package notaryshard

import (
	"errors"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/tlsnet"
)

func testWorld(t *testing.T, seed int64, leaves int) *tlsnet.World {
	t.Helper()
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: leaves})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestShardForDeterministicAndBalanced pins the placement function: pure
// in its inputs, in range, and spreading a real leaf population without
// starving any shard.
func TestShardForDeterministicAndBalanced(t *testing.T) {
	w := testWorld(t, 1, 600)
	c := corpus.Shared()
	for _, n := range []int{1, 2, 4, 7, 16} {
		counts := make([]int, n)
		for _, leaf := range w.Leaves() {
			ref := c.InternCert(leaf.Chain[0])
			d := c.Entry(ref).Digest
			i := ShardFor(d, n)
			if i < 0 || i >= n {
				t.Fatalf("ShardFor out of range: %d of %d", i, n)
			}
			if j := ShardFor(d, n); j != i {
				t.Fatalf("ShardFor not deterministic: %d then %d", i, j)
			}
			counts[i]++
		}
		if n > 1 {
			for i, got := range counts {
				if got == 0 {
					t.Fatalf("n=%d: shard %d received no leaves: %v", n, i, counts)
				}
			}
		}
	}
}

// TestShardForMonotone pins jump hashing's defining property: growing the
// cluster from n to n+1 shards only moves keys onto the new shard, never
// between existing ones — the minimal-movement guarantee resharding
// relies on.
func TestShardForMonotone(t *testing.T) {
	w := testWorld(t, 2, 400)
	c := corpus.Shared()
	for n := 1; n < 8; n++ {
		for _, leaf := range w.Leaves() {
			ref := c.InternCert(leaf.Chain[0])
			d := c.Entry(ref).Digest
			before, after := ShardFor(d, n), ShardFor(d, n+1)
			if before != after && after != n {
				t.Fatalf("n=%d→%d: key moved between existing shards (%d→%d)", n, n+1, before, after)
			}
		}
	}
}

// TestMergedMatchesSingleNotary checks the cluster end to end against a
// single notary fed the identical stream: every top-level statistic of
// the merged view must agree exactly, at several shard counts.
func TestMergedMatchesSingleNotary(t *testing.T) {
	w := testWorld(t, 3, 500)
	single := notary.New(certgen.Epoch)
	tlsnet.Feed(w, single)

	for _, shards := range []int{1, 3, 5} {
		cl, err := New(certgen.Epoch, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := tlsnet.FeedTo(w, cl); err != nil {
			t.Fatal(err)
		}
		m := cl.Merged()
		if got, want := m.Sessions(), single.Sessions(); got != want {
			t.Fatalf("shards=%d: merged sessions %d, single %d", shards, got, want)
		}
		if got, want := cl.Sessions(), single.Sessions(); got != want {
			t.Fatalf("shards=%d: summed sessions %d, single %d", shards, got, want)
		}
		if got, want := m.NumUnique(), single.NumUnique(); got != want {
			t.Fatalf("shards=%d: merged unique %d, single %d", shards, got, want)
		}
		if got, want := m.NumUnexpired(), single.NumUnexpired(); got != want {
			t.Fatalf("shards=%d: merged unexpired %d, single %d", shards, got, want)
		}
		store := w.Universe().AOSP("4.4")
		gotRep, wantRep := cl.ValidateOne(store), single.ValidateOne(store)
		if gotRep.Validated != wantRep.Validated {
			t.Fatalf("shards=%d: merged validated %d, single %d", shards, gotRep.Validated, wantRep.Validated)
		}
		for _, leaf := range w.Leaves()[:50] {
			if cl.HasRecord(leaf.Chain[0]) != single.HasRecord(leaf.Chain[0]) {
				t.Fatalf("shards=%d: HasRecord disagrees for a leaf", shards)
			}
		}
	}
}

// TestMergedMemoization checks that the merged view is rebuilt only when
// the cluster has mutated since.
func TestMergedMemoization(t *testing.T) {
	w := testWorld(t, 4, 120)
	cl, err := New(certgen.Epoch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsnet.FeedTo(w, cl); err != nil {
		t.Fatal(err)
	}
	m1 := cl.Merged()
	if m2 := cl.Merged(); m2 != m1 {
		t.Fatal("Merged rebuilt with no intervening mutation")
	}
	leaf := w.Leaves()[0]
	if err := cl.Observe(notary.Observation{Chain: leaf.Chain, Port: leaf.Port}); err != nil {
		t.Fatal(err)
	}
	if m3 := cl.Merged(); m3 == m1 {
		t.Fatal("Merged not rebuilt after a mutation")
	}
}

// TestObserveBatchPerShardIdempotency is the router's exactly-once
// contract: a batch retried under the same ID after one shard failed is
// applied only by the shards that missed it the first time.
func TestObserveBatchPerShardIdempotency(t *testing.T) {
	w := testWorld(t, 5, 300)
	cl, err := New(certgen.Epoch, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Build a batch that provably spans all three shards.
	var batch []notary.Observation
	covered := map[int]bool{}
	for _, leaf := range w.Leaves() {
		i := cl.shardIndexFor(leaf.Chain[0])
		batch = append(batch, notary.Observation{Chain: leaf.Chain, Port: leaf.Port})
		covered[i] = true
		if len(covered) == 3 && len(batch) >= 30 {
			break
		}
	}
	if len(covered) < 3 {
		t.Fatalf("leaf population covers only %d of 3 shards", len(covered))
	}

	boom := errors.New("injected shard failure")
	cl.FailNext(1, boom)
	if err := cl.ObserveBatch("batch-1", batch); !errors.Is(err, boom) {
		t.Fatalf("first attempt: got %v, want injected failure", err)
	}
	if got := cl.shards[1].n.Sessions(); got != 0 {
		t.Fatalf("failed shard applied %d sessions before the retry", got)
	}

	// The retry must complete, and every observation must land exactly
	// once per shard: total sessions equals the batch size.
	if err := cl.ObserveBatch("batch-1", batch); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if got, want := cl.Sessions(), int64(len(batch)); got != want {
		t.Fatalf("after retry: %d sessions, want exactly %d (once per observation)", got, want)
	}

	// A third send of the same ID is absorbed entirely.
	if err := cl.ObserveBatch("batch-1", batch); err != nil {
		t.Fatal(err)
	}
	if got, want := cl.Sessions(), int64(len(batch)); got != want {
		t.Fatalf("duplicate resend applied again: %d sessions, want %d", got, want)
	}
}

// TestDurableClusterRecovery checks the per-shard durability composition:
// a durable cluster that loses its process (no Close, no checkpoint since
// the writes) recovers every acknowledged observation from the per-shard
// WALs, and the merged view survives intact.
func TestDurableClusterRecovery(t *testing.T) {
	w := testWorld(t, 6, 200)
	fsys := faultfs.NewMem(1)

	cl, err := Open(fsys, "data", certgen.Epoch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsnet.FeedTo(w, cl); err != nil {
		t.Fatal(err)
	}
	wantSessions := cl.Sessions()
	wantUnique := cl.NumUnique()
	// No Close: simulate the process dying with the WALs as the only
	// durable record of the post-snapshot writes.

	re, err := Open(fsys, "data", certgen.Epoch, 3)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	defer re.Close()
	if got := re.Sessions(); got != wantSessions {
		t.Fatalf("recovered %d sessions, want %d", got, wantSessions)
	}
	if got := re.NumUnique(); got != wantUnique {
		t.Fatalf("recovered %d unique, want %d", got, wantUnique)
	}
}

// TestDurableClusterCheckpointAndReopen does the clean-shutdown variant
// and additionally verifies each shard's directory holds an independent
// generation.
func TestDurableClusterCheckpointAndReopen(t *testing.T) {
	w := testWorld(t, 7, 150)
	fsys := faultfs.NewMem(1)

	cl, err := Open(fsys, "data", certgen.Epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsnet.FeedTo(w, cl); err != nil {
		t.Fatal(err)
	}
	want := cl.Sessions()
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := notary.Fsck(fsys, faultfs.Join("data", []string{"shard-000", "shard-001"}[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Healthy() {
			t.Fatalf("shard %d unhealthy after clean shutdown: %s", i, rep)
		}
	}
	re, err := Open(fsys, "data", certgen.Epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Sessions(); got != want {
		t.Fatalf("reopened %d sessions, want %d", got, want)
	}
}

// TestReshardOnReopen reopens a durable cluster at a different width: the
// merged view must still carry every session — placement only governs
// where new writes go, while the merge is placement-agnostic.
func TestReshardOnReopen(t *testing.T) {
	w := testWorld(t, 8, 150)
	fsys := faultfs.NewMem(1)

	cl, err := Open(fsys, "data", certgen.Epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsnet.FeedTo(w, cl); err != nil {
		t.Fatal(err)
	}
	want := cl.Sessions()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(fsys, "data", certgen.Epoch, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Sessions(); got != want {
		t.Fatalf("after resharding 2→5: %d sessions, want %d", got, want)
	}
	// New writes land under the new placement and merge in fine.
	leaf := w.Leaves()[0]
	if err := re.Observe(notary.Observation{Chain: leaf.Chain, Port: leaf.Port}); err != nil {
		t.Fatal(err)
	}
	if got := re.Sessions(); got != want+1 {
		t.Fatalf("post-reshard write: %d sessions, want %d", got, want+1)
	}
}

// TestClusterRejectsBadConfig covers constructor validation.
func TestClusterRejectsBadConfig(t *testing.T) {
	if _, err := New(certgen.Epoch, 0); err == nil {
		t.Fatal("New accepted 0 shards")
	}
	cl, err := New(certgen.Epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveAll([]notary.Observation{{}}); err == nil {
		t.Fatal("ObserveAll accepted an empty chain")
	}
}
