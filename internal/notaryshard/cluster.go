package notaryshard

import (
	"context"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
	"tangledmass/internal/rootstore"
)

// seenCap bounds each shard's idempotency-ID window, mirroring the
// notarynet server's. Retried batches follow failures within seconds.
const seenCap = 4096

// Option configures a Cluster.
type Option func(*options)

type options struct {
	c        *corpus.Corpus
	observer *obs.Observer
	workers  int
}

// WithCorpus interns all shards against c. Every shard MUST share one
// corpus — that is what makes Refs, and therefore shard placement and the
// merge, agree. Defaults to the process-wide shared corpus.
func WithCorpus(c *corpus.Corpus) Option { return func(o *options) { o.c = c } }

// WithObserver attaches the router-level observer. Each shard always gets
// its own private observer; Snapshot() merges them all.
func WithObserver(ob *obs.Observer) Option { return func(o *options) { o.observer = ob } }

// WithWorkers bounds each shard notary's chain-building parallelism and
// the router's cross-shard apply fan-out.
func WithWorkers(w int) Option { return func(o *options) { o.workers = w } }

// shard is one member: a full notary (optionally durable) plus the
// per-shard idempotency window for retried batches.
type shard struct {
	n        *notary.Notary
	db       *notary.DB // nil for an in-memory shard
	observer *obs.Observer

	mu        sync.Mutex
	seen      map[string]bool
	seenOrder []string

	// failNext, when non-nil, fails the next apply once — a white-box test
	// seam for exercising the router's retry/idempotency path.
	failNext error
}

// Cluster routes observations across N notary shards by leaf content
// address and merges them back into a single-notary-equivalent view. It
// implements notarynet's View, Ingester and BatchIngester, and tlsnet's
// Sink, so it drops in anywhere a bare Notary or notary.DB does.
type Cluster struct {
	at       time.Time
	c        *corpus.Corpus
	observer *obs.Observer
	workers  int
	durable  bool
	shards   []*shard

	mutations atomic.Uint64

	mu       sync.Mutex
	merged   *notary.Notary
	mergedAt uint64
	hasMerge bool
}

// New builds an in-memory cluster of nShards at reference time `at`.
func New(at time.Time, nShards int, opts ...Option) (*Cluster, error) {
	cl, op, err := newCluster(at, nShards, opts)
	if err != nil {
		return nil, err
	}
	for i := range cl.shards {
		so := obs.New()
		cl.shards[i] = &shard{
			n: notary.New(at, notary.WithCorpus(op.c), notary.WithObserver(so),
				notary.WithWorkers(op.workers)),
			observer: so,
			seen:     make(map[string]bool),
		}
	}
	return cl, nil
}

// Open builds a durable cluster: shard i journals and checkpoints under
// dir/shard-<i>, each with its own WAL and snapshot generation, recovered
// independently on reopen. Because placement is a pure function of
// certificate bytes, reopening with a different nShards still merges to
// the correct database — data written under the old layout is simply
// absorbed from whichever shard holds it.
func Open(fsys faultfs.FS, dir string, at time.Time, nShards int, opts ...Option) (*Cluster, error) {
	cl, op, err := newCluster(at, nShards, opts)
	if err != nil {
		return nil, err
	}
	cl.durable = true
	for i := range cl.shards {
		so := obs.New()
		db, err := notary.Open(fsys, faultfs.Join(dir, fmt.Sprintf("shard-%03d", i)), at,
			notary.WithCorpus(op.c), notary.WithObserver(so), notary.WithWorkers(op.workers))
		if err != nil {
			for _, sh := range cl.shards[:i] {
				_ = sh.db.Close()
			}
			return nil, fmt.Errorf("notaryshard: opening shard %d: %w", i, err)
		}
		cl.shards[i] = &shard{n: db.Notary(), db: db, observer: so, seen: make(map[string]bool)}
	}
	return cl, nil
}

func newCluster(at time.Time, nShards int, opts []Option) (*Cluster, *options, error) {
	if nShards < 1 {
		return nil, nil, fmt.Errorf("notaryshard: shard count %d < 1", nShards)
	}
	op := &options{c: corpus.Shared(), observer: obs.New()}
	for _, o := range opts {
		o(op)
	}
	if op.c == nil {
		op.c = corpus.Shared()
	}
	if op.observer == nil {
		op.observer = obs.New()
	}
	cl := &Cluster{
		at:       at,
		c:        op.c,
		observer: op.observer,
		workers:  op.workers,
		shards:   make([]*shard, nShards),
	}
	return cl, op, nil
}

// NumShards returns the cluster width.
func (cl *Cluster) NumShards() int { return len(cl.shards) }

// At returns the reference time shared by every shard.
func (cl *Cluster) At() time.Time { return cl.at }

// Corpus returns the shared corpus.
func (cl *Cluster) Corpus() *corpus.Corpus { return cl.c }

// ShardNotary exposes shard i's notary for tests and diagnostics.
func (cl *Cluster) ShardNotary(i int) *notary.Notary { return cl.shards[i].n }

// ShardSnapshot captures shard i's private metrics.
func (cl *Cluster) ShardSnapshot(i int) obs.Snapshot { return cl.shards[i].observer.Snapshot() }

// Snapshot merges the router's metrics with every shard's.
func (cl *Cluster) Snapshot() obs.Snapshot {
	s := cl.observer.Snapshot()
	for _, sh := range cl.shards {
		s = s.Merge(sh.observer.Snapshot())
	}
	return s
}

// FailNext arms shard i to fail its next apply with err — a deterministic
// fault-injection seam in the spirit of faultfs.MemFS.CrashAfter, letting
// the retry/idempotency tests stage a mid-batch shard failure without
// real disk or network faults.
func (cl *Cluster) FailNext(i int, err error) {
	sh := cl.shards[i]
	sh.mu.Lock()
	sh.failNext = err
	sh.mu.Unlock()
}

// shardIndexFor routes a certificate by its corpus content address.
func (cl *Cluster) shardIndexFor(cert *x509.Certificate) int {
	ref := cl.c.InternCert(cert)
	return ShardFor(cl.c.Entry(ref).Digest, len(cl.shards))
}

// sawID reports whether the shard already committed a batch under id,
// recording it if not. Mirrors the notarynet server's window; IDs are
// forgotten on failed applies by the caller never marking them.
func (sh *shard) sawID(id string) bool {
	if id == "" {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.seen[id]
}

func (sh *shard) markID(id string) {
	if id == "" {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seen[id] {
		return
	}
	sh.seen[id] = true
	sh.seenOrder = append(sh.seenOrder, id)
	if len(sh.seenOrder) > seenCap {
		delete(sh.seen, sh.seenOrder[0])
		sh.seenOrder = sh.seenOrder[1:]
	}
}

// apply commits a batch to this shard: through the journal when durable
// (all-or-nothing group commit), directly into memory otherwise. A fenced
// journal (ErrJournalFailed) gets one checkpoint-and-retry — the
// checkpoint rewrites a fresh snapshot and WAL generation, which is the
// documented recovery for a failed group commit.
func (sh *shard) apply(batch []notary.Observation) error {
	start := time.Now()
	err := sh.takeFailNext()
	if err == nil {
		if sh.db != nil {
			err = sh.db.Append(batch)
			if errors.Is(err, notary.ErrJournalFailed) {
				if cerr := sh.db.Checkpoint(); cerr == nil {
					err = sh.db.Append(batch)
				}
			}
		} else {
			sh.n.ObserveAll(batch)
		}
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	sh.observer.Histogram(KeyShardIngestLatency, IngestLatencyBuckets).Observe(ms)
	return err
}

func (sh *shard) takeFailNext() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.failNext
	sh.failNext = nil
	return err
}

// Observe routes one observation to its leaf's shard (notarynet.Ingester).
func (cl *Cluster) Observe(o notary.Observation) error {
	return cl.ObserveAll([]notary.Observation{o})
}

// ObserveAll routes a batch: observations are grouped by leaf shard with
// per-shard arrival order preserved, then the shard groups are applied in
// parallel — shards are disjoint, so cross-shard apply order cannot
// matter, which is exactly why the merged artifacts stay deterministic.
func (cl *Cluster) ObserveAll(batch []notary.Observation) error {
	return cl.ObserveBatch("", batch)
}

// ObserveBatch is ObserveAll carrying the request's idempotency ID
// (notarynet.BatchIngester). Each shard remembers IDs it has committed:
// when a retry arrives after a mid-batch failure, shards that already
// applied their slice skip it, shards that failed apply it — the batch
// lands exactly once per shard.
func (cl *Cluster) ObserveBatch(id string, batch []notary.Observation) error {
	if len(batch) == 0 {
		return nil
	}
	start := time.Now()
	groups := make([][]notary.Observation, len(cl.shards))
	for _, o := range batch {
		if len(o.Chain) == 0 {
			return errors.New("notaryshard: observation with empty chain")
		}
		i := cl.shardIndexFor(o.Chain[0])
		groups[i] = append(groups[i], o)
	}
	err := parallel.ForEach(context.Background(), len(cl.shards), func(_ context.Context, i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		sh := cl.shards[i]
		if sh.sawID(id) {
			cl.observer.Counter(KeyBatchDedupe).Inc()
			return nil
		}
		if err := sh.apply(groups[i]); err != nil {
			return fmt.Errorf("notaryshard: shard %d: %w", i, err)
		}
		sh.markID(id)
		return nil
	}, parallel.WithWorkers(cl.routeWorkers()))
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	cl.observer.Histogram(KeyIngestLatency, IngestLatencyBuckets).Observe(ms)
	if err != nil {
		cl.observer.Counter(KeyIngestErrors).Inc()
		return err
	}
	cl.observer.Counter(KeyIngestTotal).Add(int64(len(batch)))
	cl.mutations.Add(1)
	return nil
}

func (cl *Cluster) routeWorkers() int {
	if cl.workers > 0 && cl.workers < len(cl.shards) {
		return cl.workers
	}
	return len(cl.shards)
}

// ObserveCA routes one CA-only observation to the certificate's shard —
// one shard, so its session is counted once (notarynet.Ingester).
func (cl *Cluster) ObserveCA(cert *x509.Certificate, port int) error {
	start := time.Now()
	sh := cl.shards[cl.shardIndexFor(cert)]
	var err error
	if sh.db != nil {
		err = sh.db.ObserveCA(cert, port)
	} else {
		sh.n.ObserveCA(cert, port)
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	cl.observer.Histogram(KeyIngestLatency, IngestLatencyBuckets).Observe(ms)
	if err != nil {
		cl.observer.Counter(KeyIngestErrors).Inc()
		return err
	}
	cl.observer.Counter(KeyIngestTotal).Inc()
	cl.mutations.Add(1)
	return nil
}

// ImportStore broadcasts a root store to every shard: store membership is
// a flag the merge ORs, so the merged view carries FromStore exactly as a
// single notary would, and each shard can answer HasRecord for store
// certificates locally.
func (cl *Cluster) ImportStore(s *rootstore.Store) error {
	for i, sh := range cl.shards {
		var err error
		if sh.db != nil {
			err = sh.db.ImportStore(s)
		} else {
			sh.n.ImportStore(s)
		}
		if err != nil {
			return fmt.Errorf("notaryshard: shard %d: %w", i, err)
		}
	}
	cl.mutations.Add(1)
	return nil
}

// Merged folds every shard, in shard order, into one fresh Notary sharing
// the cluster's corpus and reference time. Absorb is a commutative monoid
// over disjoint-by-session partitions, so the result is exactly the
// database a single notary fed the concatenated stream would hold — same
// entries, same counts, same windows — and every artifact derived from it
// is byte-identical at any shard count. The merge is memoized against the
// cluster's mutation counter; steady-state reads pay nothing.
func (cl *Cluster) Merged() *notary.Notary {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	at := cl.mutations.Load()
	if cl.hasMerge && cl.mergedAt == at {
		return cl.merged
	}
	m := notary.New(cl.at, notary.WithCorpus(cl.c), notary.WithWorkers(cl.workers))
	for i, sh := range cl.shards {
		if err := m.Absorb(sh.n); err != nil {
			// Shards are constructed with the cluster's corpus and time, the
			// only mismatches Absorb checks; reaching this is a bug.
			panic(fmt.Sprintf("notaryshard: absorbing shard %d: %v", i, err))
		}
	}
	cl.observer.Counter(KeyMergeTotal).Inc()
	cl.merged, cl.mergedAt, cl.hasMerge = m, at, true
	return m
}

// HasRecord answers from the certificate's own shard: leaf and CA
// observations land there by routing, and store imports are broadcast, so
// the one shard is authoritative (notarynet.View).
func (cl *Cluster) HasRecord(cert *x509.Certificate) bool {
	return cl.shards[cl.shardIndexFor(cert)].n.HasRecord(cert)
}

// Sessions sums the disjoint per-shard session totals (notarynet.View).
func (cl *Cluster) Sessions() int64 {
	var total int64
	for _, sh := range cl.shards {
		total += sh.n.Sessions()
	}
	return total
}

// NumUnique answers from the merged view — chains share intermediates
// across shards, so per-shard uniques overcount (notarynet.View).
func (cl *Cluster) NumUnique() int { return cl.Merged().NumUnique() }

// NumUnexpired answers from the merged view (notarynet.View).
func (cl *Cluster) NumUnexpired() int { return cl.Merged().NumUnexpired() }

// ValidateOne runs the Table 3/4 validation against the merged view
// (notarynet.View).
func (cl *Cluster) ValidateOne(s *rootstore.Store) *notary.StoreReport {
	return cl.Merged().ValidateOne(s)
}

// Checkpoint checkpoints every durable shard (no-op for in-memory).
func (cl *Cluster) Checkpoint() error {
	for i, sh := range cl.shards {
		if sh.db == nil {
			continue
		}
		if err := sh.db.Checkpoint(); err != nil {
			return fmt.Errorf("notaryshard: checkpointing shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every durable shard, returning the first error after
// attempting all.
func (cl *Cluster) Close() error {
	var first error
	for i, sh := range cl.shards {
		if sh.db == nil {
			continue
		}
		if err := sh.db.Close(); err != nil && first == nil {
			first = fmt.Errorf("notaryshard: closing shard %d: %w", i, err)
		}
	}
	return first
}
