// Package notaryshard scales the notary horizontally: a router fronts N
// independent notary shards, placing every observation by the content
// address of its leaf certificate, and a shard-ordered merge reconstructs
// exactly the database a single notary would hold. Placement depends only
// on certificate bytes — never on seeds, arrival order, or shard count of
// a previous run — so the merged artifacts (Tables 3/4, Figures 1–3) are
// byte-identical at any shard count.
package notaryshard

import (
	"encoding/binary"

	"tangledmass/internal/corpus"
)

// ShardFor places a certificate digest on one of n shards using jump
// consistent hashing (Lamping & Veach, "A Fast, Minimal Memory, Consistent
// Hash Algorithm"). Properties the cluster leans on:
//
//   - deterministic: a pure function of the digest bytes and n, so every
//     router, every process, every run agrees on placement;
//   - balanced: keys split uniformly across the n shards;
//   - monotone: growing n from k to k+1 only moves keys onto the new
//     shard, never between existing shards — resharding a durable cluster
//     relocates the minimum of data.
//
// The key is the first 8 bytes of the SHA-256 content address, which the
// corpus already computes for interning; the remaining 24 bytes buy
// nothing against a uniform hash.
func ShardFor(d corpus.Digest, n int) int {
	if n <= 1 {
		return 0
	}
	key := binary.BigEndian.Uint64(d[:8])
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
