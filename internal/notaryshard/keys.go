package notaryshard

// Observability keys. Router-level instruments live on the cluster's own
// observer; per-shard instruments live on each shard's private observer,
// and Snapshot() merges them, so one shard's latency tail is visible both
// in isolation (ShardSnapshot) and in the aggregate.
const (
	// KeyIngestLatency is the router-level ingest latency histogram, in
	// milliseconds: route + apply, per batch or single observation.
	KeyIngestLatency = "notaryshard.ingest.latency_ms"
	// KeyShardIngestLatency is the per-shard apply latency histogram, in
	// milliseconds, recorded on the shard's own observer.
	KeyShardIngestLatency = "notaryshard.shard.ingest.latency_ms"
	// KeyIngestTotal counts observations accepted by the router.
	KeyIngestTotal = "notaryshard.ingest.total"
	// KeyIngestErrors counts observations rejected by a shard.
	KeyIngestErrors = "notaryshard.ingest.errors"
	// KeyBatchDedupe counts per-shard batch applications skipped because
	// the shard had already committed that idempotency ID.
	KeyBatchDedupe = "notaryshard.batch.dedupe.hit"
	// KeyMergeTotal counts full shard-ordered merges (memoized misses).
	KeyMergeTotal = "notaryshard.merge.total"
)

// IngestLatencyBuckets are the bucket bounds for the ingest latency
// histograms. obs.DefaultBuckets starts at 0.5 ms, too coarse for an
// in-memory apply measured in microseconds; these extend two decades
// finer while keeping the same 10 s ceiling.
var IngestLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}
