package supl

import (
	"crypto/x509"
	"errors"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
)

func env(t *testing.T) (*cauniverse.Universe, *Server, *x509.Certificate) {
	t.Helper()
	u := cauniverse.Default()
	suplRoot := u.Root("Motorola SUPL Server Root CA")
	svc, err := u.Generator().Leaf(suplRoot.Issued, "supl.vendor.example",
		certgen.WithKeyName("supl-service"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return u, srv, suplRoot.Issued.Cert
}

func sampleRequest() LocationRequest {
	return LocationRequest{
		Cells: []CellID{
			{MCC: 310, MNC: 4, LAC: 120, Cell: 20033},
			{MCC: 310, MNC: 4, LAC: 121, Cell: 20034},
		},
		WiFiAPs: []string{"aa:bb:cc:dd:ee:01", "aa:bb:cc:dd:ee:02"},
	}
}

func TestAssistanceExchange(t *testing.T) {
	u, srv, suplRoot := env(t)
	moto := device.New(device.Profile{Model: "Droid Razr", Manufacturer: "MOTOROLA", Version: "4.1"},
		u.AOSP("4.1"), []*x509.Certificate{suplRoot})
	c := &Client{Store: moto.EffectiveStore(), SUPLRoot: suplRoot, At: certgen.Epoch}
	data, err := c.Fetch(srv.Addr(), "supl.vendor.example", sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.EphemerisIDs) == 0 {
		t.Error("assistance should include ephemeris IDs")
	}
	// The operator now knows the device's radio environment — the §5.1
	// privacy observation.
	obs := srv.ObservedRequests()
	if len(obs) != 1 {
		t.Fatalf("server observed %d requests, want 1", len(obs))
	}
	if len(obs[0].Cells) != 2 || len(obs[0].WiFiAPs) != 2 {
		t.Error("server did not receive the full location context")
	}
}

func TestStockDeviceRefusesToLeakLocation(t *testing.T) {
	u, srv, suplRoot := env(t)
	stock := device.New(device.Profile{Model: "Nexus 5", Manufacturer: "LG", Version: "4.4"},
		u.AOSP("4.4"), nil)
	c := &Client{Store: stock.EffectiveStore(), SUPLRoot: suplRoot, At: certgen.Epoch}
	_, err := c.Fetch(srv.Addr(), "supl.vendor.example", sampleRequest())
	if !errors.Is(err, ErrChannelUntrusted) {
		t.Fatalf("err = %v, want ErrChannelUntrusted", err)
	}
	// Crucially: nothing was transmitted before channel verification.
	if len(srv.ObservedRequests()) != 0 {
		t.Error("location context leaked over an untrusted channel")
	}
}

func TestWebAnchoredChannelRefused(t *testing.T) {
	u, _, suplRoot := env(t)
	// A service certificate under a popular web root, not the SUPL root.
	webRoot := u.IssuingRoots()[0]
	fake, err := u.Generator().Leaf(webRoot.Issued, "supl.vendor.example",
		certgen.WithKeyName("fake-supl"))
	if err != nil {
		t.Fatal(err)
	}
	store := u.AOSP("4.4").Clone("moto")
	store.Add(suplRoot)
	c := &Client{Store: store, SUPLRoot: suplRoot, At: certgen.Epoch}
	if err := c.verifyChannel([]*x509.Certificate{fake.Cert}); !errors.Is(err, ErrChannelUntrusted) {
		t.Errorf("web-anchored SUPL channel err = %v, want ErrChannelUntrusted", err)
	}
	if err := c.verifyChannel(nil); !errors.Is(err, ErrChannelUntrusted) {
		t.Error("empty chain should be untrusted")
	}
}

func TestAssistDeterministic(t *testing.T) {
	req := sampleRequest()
	a, b := assist(req), assist(req)
	if a.ApproxLat != b.ApproxLat || a.ApproxLon != b.ApproxLon {
		t.Error("assistance should be deterministic for the same context")
	}
	empty := assist(LocationRequest{})
	if empty.ApproxLat != 0 || empty.ApproxLon != 0 {
		t.Error("empty context should yield the zero position")
	}
}
