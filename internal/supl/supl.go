// Package supl simulates the Secure User Plane Location service whose root
// certificates the paper finds in Motorola firmware (§5.1): A-GPS
// assistance over TLS on port 7275. A SUPL request carries
// privacy-sensitive context — the visible cellular base stations and WiFi
// access points — which is exactly why the paper notes "these operations
// require a secure channel", and why the §7 marketing proxy whitelists
// supl.google.com:7275 rather than break location for its subjects.
//
// The implementation mirrors internal/fota's structure: a TLS service
// authenticated under the special-purpose SUPL root, and a device client
// that refuses channels anchored anywhere else.
package supl

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/chain"
	"tangledmass/internal/rootstore"
)

// CellID identifies one observed cellular base station.
type CellID struct {
	MCC  int `json:"mcc"`
	MNC  int `json:"mnc"`
	LAC  int `json:"lac"`
	Cell int `json:"cell"`
}

// LocationRequest is the device's assistance query — the privacy-sensitive
// payload (§5.1: "including neighboring WiFi APs and cellular base
// stations").
type LocationRequest struct {
	Cells   []CellID `json:"cells"`
	WiFiAPs []string `json:"wifi_aps"` // BSSIDs
}

// AssistanceData is the server's answer.
type AssistanceData struct {
	// ApproxLat/ApproxLon is the coarse position inferred from the request.
	ApproxLat float64 `json:"approx_lat"`
	ApproxLon float64 `json:"approx_lon"`
	// EphemerisIDs lists the satellite ephemerides worth downloading.
	EphemerisIDs []int `json:"ephemeris_ids"`
}

// ErrChannelUntrusted mirrors fota.ErrChannelUntrusted for the SUPL root.
var ErrChannelUntrusted = errors.New("supl: assistance channel does not chain to a trusted SUPL root")

// Server is the assistance endpoint: one TLS listener answering each
// connection's LocationRequest with AssistanceData.
type Server struct {
	ln   net.Listener
	cred tls.Certificate

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Requests retains received queries — demonstrating exactly what the
	// operator of a SUPL service (or anyone who could intercept it) learns.
	reqMu    sync.Mutex
	requests []LocationRequest
}

// NewServer starts a SUPL server on 127.0.0.1 using the given service
// credential (a certificate chaining to the SUPL root).
func NewServer(service *certgen.Issued) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("supl: listening: %w", err)
	}
	s := &Server{
		ln: ln,
		cred: tls.Certificate{
			Certificate: [][]byte{service.Cert.Raw},
			PrivateKey:  service.Key,
		},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ObservedRequests returns the location context the service has collected.
func (s *Server) ObservedRequests() []LocationRequest {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	out := make([]LocationRequest, len(s.requests))
	copy(out, s.requests)
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
				return
			}
			tconn := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{s.cred}})
			if err := tconn.Handshake(); err != nil {
				return
			}
			var req LocationRequest
			if err := json.NewDecoder(tconn).Decode(&req); err != nil {
				return
			}
			s.reqMu.Lock()
			s.requests = append(s.requests, req)
			s.reqMu.Unlock()
			if err := json.NewEncoder(tconn).Encode(assist(req)); err != nil {
				return
			}
			// Best-effort close_notify; the raw conn close is deferred.
			_ = tconn.Close()
		}()
	}
}

// assist derives deterministic assistance data from the request — a toy
// geolocation that still demonstrates the information flow.
func assist(req LocationRequest) AssistanceData {
	var lat, lon float64
	for _, c := range req.Cells {
		lat += float64(c.LAC%180) - 90
		lon += float64(c.Cell%360) - 180
	}
	if n := len(req.Cells); n > 0 {
		lat /= float64(n)
		lon /= float64(n)
	}
	ids := make([]int, 0, 8)
	for i := 1; i <= 8; i++ {
		ids = append(ids, i)
	}
	return AssistanceData{ApproxLat: lat, ApproxLon: lon, EphemerisIDs: ids}
}

// Client is the device-side assistance client.
type Client struct {
	// Store is the device's effective root store; SUPLRoot pins the
	// special-purpose anchor the channel must terminate at.
	Store    *rootstore.Store
	SUPLRoot *x509.Certificate
	At       time.Time
}

// Fetch performs one assistance exchange, verifying the channel against the
// device store and the SUPL root before transmitting any location context.
func (c *Client) Fetch(addr, serverName string, req LocationRequest) (AssistanceData, error) {
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName:         serverName,
		InsecureSkipVerify: true, // verified below against the device store
	})
	if err != nil {
		return AssistanceData{}, fmt.Errorf("supl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	presented := conn.ConnectionState().PeerCertificates
	if err := c.verifyChannel(presented); err != nil {
		return AssistanceData{}, err
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return AssistanceData{}, fmt.Errorf("supl: sending request: %w", err)
	}
	var data AssistanceData
	if err := json.NewDecoder(conn).Decode(&data); err != nil {
		return AssistanceData{}, fmt.Errorf("supl: reading assistance: %w", err)
	}
	return data, nil
}

func (c *Client) verifyChannel(presented []*x509.Certificate) error {
	if len(presented) == 0 {
		return ErrChannelUntrusted
	}
	if !c.Store.Contains(c.SUPLRoot) {
		return fmt.Errorf("%w: device store lacks the SUPL root", ErrChannelUntrusted)
	}
	v := chain.NewVerifier([]*x509.Certificate{c.SUPLRoot}, presented[1:], c.At)
	if !v.Validates(presented[0]) {
		return ErrChannelUntrusted
	}
	return nil
}
