package analysis

import (
	"sort"

	"tangledmass/internal/device"
	"tangledmass/internal/population"
	"tangledmass/internal/trusteval"
)

// TrustAttributionRow is one cell of the interception-attribution matrix: the
// number of sessions whose acceptance of a forged chain would be explained by
// Cause, split by the handset's store-tampering install channel and its
// platform API level.
type TrustAttributionRow struct {
	Cause    string // trusteval cause vocabulary: store-tampering, app-accept-all, ...
	Channel  string // device.Channel string: firmware, user, system
	APILevel int
	Sessions int
}

// CauseCount is a per-cause session total in the fixed trusteval.Causes()
// order.
type CauseCount struct {
	Cause    string
	Sessions int
}

// TrustAttribution explains which layer of the trust decision makes each
// session interceptable: the effective store was tampered with (a CA the
// firmware never shipped now anchors chains), or the session's app policy
// misvalidates (accept-all trust manager, allow-all hostname verifier,
// bypassed pins) — or neither, in which case the session is clean. The
// causes partition all sessions exactly: sum(ByCause) == TotalSessions and
// Exposed == TotalSessions − clean.
type TrustAttribution struct {
	TotalSessions int
	// Exposed counts sessions with a non-clean cause — the sessions an
	// interception proxy positioned on-path would succeed against.
	Exposed int
	ByCause []CauseCount
	Rows    []TrustAttributionRow
}

// sessionSignals derives the trust-evaluation signals the attribution model
// assumes for a session: store tampering from the handset's install channel,
// app misvalidation from the session's drawn policy.
func sessionSignals(s *population.Session) trusteval.Signals {
	return trusteval.Signals{
		StoreTampered: s.Handset.TamperChannel() != device.ChannelFirmware,
		AcceptAll:     s.Policy.AcceptAll,
		SkipHostname:  s.Policy.SkipHostname,
		BypassedPin:   s.Policy.BypassPins,
	}
}

type trustAttrKey struct {
	cause   trusteval.Cause
	channel device.Channel
	api     int
}

type trustAttrAgg struct {
	counts map[trustAttrKey]int
}

// NewTrustAttributionAggregate counts sessions per (cause, channel, API
// level) cell incrementally. Counting is commutative, so Merge order cannot
// change the result.
func NewTrustAttributionAggregate() Aggregate[Batch, TrustAttribution] {
	return &trustAttrAgg{counts: map[trustAttrKey]int{}}
}

func (a *trustAttrAgg) Add(b Batch) {
	for _, s := range b.Sessions {
		a.counts[trustAttrKey{
			cause:   trusteval.Attribute(sessionSignals(s)),
			channel: s.Handset.TamperChannel(),
			api:     device.APILevel(s.Handset.Version),
		}]++
	}
}

func (a *trustAttrAgg) Merge(other Aggregate[Batch, TrustAttribution]) {
	o := other.(*trustAttrAgg)
	for k, n := range o.counts {
		a.counts[k] += n
	}
}

func (a *trustAttrAgg) Result() TrustAttribution {
	causeOrder := map[trusteval.Cause]int{}
	for i, c := range trusteval.Causes() {
		causeOrder[c] = i
	}
	out := TrustAttribution{ByCause: make([]CauseCount, len(trusteval.Causes()))}
	for i, c := range trusteval.Causes() {
		out.ByCause[i].Cause = string(c)
	}
	for k, n := range a.counts {
		out.TotalSessions += n
		out.ByCause[causeOrder[k.cause]].Sessions += n
		if k.cause != trusteval.CauseClean {
			out.Exposed += n
		}
		out.Rows = append(out.Rows, TrustAttributionRow{
			Cause:    string(k.cause),
			Channel:  k.channel.String(),
			APILevel: k.api,
			Sessions: n,
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		a, b := out.Rows[i], out.Rows[j]
		if a.Cause != b.Cause {
			return causeOrder[trusteval.Cause(a.Cause)] < causeOrder[trusteval.Cause(b.Cause)]
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		return a.APILevel < b.APILevel
	})
	return out
}

// ComputeTrustAttribution attributes every session's interceptability to the
// trust-decision layer that would fail it.
func ComputeTrustAttribution(p *population.Population) TrustAttribution {
	return defaultEngine.ComputeTrustAttribution(p)
}

// ComputeTrustAttribution attributes every session's interceptability to the
// trust-decision layer that would fail it.
func (e *Engine) ComputeTrustAttribution(p *population.Population) TrustAttribution {
	return reduce(e, p, NewTrustAttributionAggregate)
}
