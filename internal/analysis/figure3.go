package analysis

import (
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/stats"
)

// Category is one of the root-certificate populations Figure 3 and Table 4
// partition over.
type Category struct {
	Name  string
	Store *rootstore.Store
}

// Figure3Categories builds the paper's eight categories from the universe.
func Figure3Categories(u *cauniverse.Universe) []Category {
	aosp44 := u.AOSP("4.4")
	moz := u.Mozilla()
	extras := rootstore.New("Non AOSP Android certs")
	for _, r := range u.Extras() {
		extras.Add(r.Issued.Cert)
	}
	extrasNonMoz := rootstore.Subtract("Non AOSP and non Mozilla Android certs", extras, moz)
	extrasOnMoz := rootstore.Intersect("Non AOSP root certs found on Mozilla's", extras, moz)
	shared := rootstore.Intersect("AOSP 4.4 and Mozilla root certs", aosp44, moz)

	return []Category{
		{"Non AOSP and non Mozilla Android certs", extrasNonMoz},
		{"Non AOSP root certs found on Mozilla's", extrasOnMoz},
		{"AOSP 4.4 and Mozilla root certs", shared},
		{"AOSP 4.1 certs", u.AOSP("4.1")},
		{"AOSP 4.4 certs", aosp44},
		{"Aggregated Android root certs", u.AggregatedAndroid()},
		{"Mozilla root store certs", moz},
		{"iOS 7 root store certs", u.IOS7()},
	}
}

// CategoryValidation is one Table 4 row plus the Figure 3 ECDF sample.
type CategoryValidation struct {
	Name string
	// TotalRoots is the category's certificate count (Table 4 column 2).
	TotalRoots int
	// ZeroFraction is the share of roots validating no Notary certificate
	// (Table 4 column 3, Figure 3's y-offset).
	ZeroFraction float64
	// Validated is the number of Notary leaves the category's roots
	// validate collectively (Table 3 when the category is a full store).
	Validated int
	// ECDF is the distribution of per-root validation counts (Figure 3).
	ECDF *stats.ECDF
}

// ValidateCategories runs the Notary validation analysis over categories in
// one pass (Tables 3–4 and Figure 3 all come from this).
func ValidateCategories(n *notary.Notary, cats []Category) []CategoryValidation {
	return defaultEngine.ValidateCategories(n, cats)
}

// ValidateCategories runs the Notary validation analysis over categories in
// one pass: the chain building fans out (and caches) inside the Notary's
// AttributeLeaves, and the per-leaf attributions feed the mergeable
// validation aggregate that projects them onto every category.
func (e *Engine) ValidateCategories(n *notary.Notary, cats []Category) []CategoryValidation {
	stores := make([]*rootstore.Store, len(cats))
	for i, c := range cats {
		stores[i] = c.Store
	}
	agg := NewValidationAggregate(cats)
	agg.Add(n.AttributeLeaves(stores, n.UnexpiredLeafRefs()))
	return agg.Result()
}

// Table3 validates the four AOSP versions plus Mozilla and iOS7, returning
// rows in the paper's order.
func Table3(n *notary.Notary, u *cauniverse.Universe) []CategoryValidation {
	return defaultEngine.Table3(n, u)
}

// Table3 validates the four AOSP versions plus Mozilla and iOS7, returning
// rows in the paper's order.
func (e *Engine) Table3(n *notary.Notary, u *cauniverse.Universe) []CategoryValidation {
	cats := []Category{
		{"Mozilla", u.Mozilla()},
		{"iOS 7", u.IOS7()},
	}
	for _, v := range cauniverse.AOSPVersions() {
		cats = append(cats, Category{"AOSP " + v, u.AOSP(v)})
	}
	return e.ValidateCategories(n, cats)
}
