package analysis

import (
	"testing"

	"tangledmass/internal/trusteval"
)

// TestTrustAttributionPartitionsSessions pins the acceptance invariant: the
// causes partition the fleet's sessions exactly — per-cause counts sum to
// the session total, the detail rows re-sum to the same total, and Exposed
// is exactly the non-clean remainder.
func TestTrustAttributionPartitionsSessions(t *testing.T) {
	p, _ := fixtures(t)
	ta := ComputeTrustAttribution(p)

	if ta.TotalSessions != len(p.Sessions) {
		t.Fatalf("TotalSessions = %d, want %d", ta.TotalSessions, len(p.Sessions))
	}
	var byCause int
	for _, c := range ta.ByCause {
		byCause += c.Sessions
	}
	if byCause != ta.TotalSessions {
		t.Errorf("sum(ByCause) = %d, want %d — causes must partition sessions", byCause, ta.TotalSessions)
	}
	var rows, clean int
	for _, r := range ta.Rows {
		if r.Sessions <= 0 {
			t.Errorf("row %+v carries a non-positive count", r)
		}
		rows += r.Sessions
		if r.Cause == string(trusteval.CauseClean) {
			clean += r.Sessions
		}
	}
	if rows != ta.TotalSessions {
		t.Errorf("sum(Rows) = %d, want %d", rows, ta.TotalSessions)
	}
	if ta.Exposed != ta.TotalSessions-clean {
		t.Errorf("Exposed = %d, want total−clean = %d", ta.Exposed, ta.TotalSessions-clean)
	}

	// ByCause follows the engine's fixed precedence order with every cause
	// present, so renderers can index it positionally.
	causes := trusteval.Causes()
	if len(ta.ByCause) != len(causes) {
		t.Fatalf("ByCause has %d entries, want %d", len(ta.ByCause), len(causes))
	}
	for i, c := range causes {
		if ta.ByCause[i].Cause != string(c) {
			t.Errorf("ByCause[%d] = %q, want %q", i, ta.ByCause[i].Cause, c)
		}
	}
}

// TestTrustAttributionShares sanity-checks the fleet-level shares the app
// catalog implies: tampered stores and misvalidating app profiles both
// explain a real minority of sessions, and most sessions stay clean.
func TestTrustAttributionShares(t *testing.T) {
	p, _ := fixtures(t)
	ta := ComputeTrustAttribution(p)

	share := func(cause trusteval.Cause) float64 {
		for _, c := range ta.ByCause {
			if c.Cause == string(cause) {
				return float64(c.Sessions) / float64(ta.TotalSessions)
			}
		}
		return 0
	}
	if s := share(trusteval.CauseStoreTampering); s <= 0 {
		t.Error("no sessions attributed to store tampering")
	}
	if s := share(trusteval.CauseAppAcceptAll); s <= 0.01 || s >= 0.30 {
		t.Errorf("accept-all share = %.3f, want a minority but non-trivial share", s)
	}
	if s := share(trusteval.CauseAppNoHostname); s <= 0 {
		t.Error("no sessions attributed to skipped hostname verification")
	}
	if s := share(trusteval.CausePinBypass); s <= 0 {
		t.Error("no sessions attributed to pin bypass")
	}
	if s := share(trusteval.CauseClean); s <= 0.5 {
		t.Errorf("clean share = %.3f, want a majority", s)
	}

	// The channel split must only ever pair store-tampering with a
	// non-firmware channel and vice versa: the cause and the channel are
	// both derived from TamperChannel, so a mismatch means the aggregate
	// and the signals diverged.
	for _, r := range ta.Rows {
		tampered := r.Channel != "firmware"
		if (r.Cause == string(trusteval.CauseStoreTampering)) != tampered &&
			r.Cause == string(trusteval.CauseStoreTampering) {
			t.Errorf("store-tampering row on firmware channel: %+v", r)
		}
		if tampered && r.Cause != string(trusteval.CauseStoreTampering) {
			t.Errorf("non-firmware channel row attributed to %s — store tampering must take precedence: %+v", r.Cause, r)
		}
	}
}
