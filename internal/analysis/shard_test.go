package analysis

import (
	"encoding/json"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

// shardCounts are the cluster widths the shard-sweep gate runs at: the
// degenerate single shard, a typical spread, and a prime count that never
// divides the leaf population evenly.
var shardCounts = []int{1, 4, 7}

// TestArtifactBytesIdenticalAcrossShardCounts is PR 9's determinism gate:
// for seeds 1–3, the full analysis artifact built from a sharded notary's
// merged view must be byte-identical to the one built from a single
// unsharded notary — same seed, same bytes, any shard count. Placement is
// a pure function of certificate content and the merge is a commutative
// fold over disjoint session partitions, so sharding must be invisible in
// every Table 3/4 and Figure 1–3 number.
func TestArtifactBytesIdenticalAcrossShardCounts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pop, err := population.Generate(population.Config{Seed: seed, SessionScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		w, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: 500, Universe: pop.Universe})
		if err != nil {
			t.Fatal(err)
		}
		artifact := func(ndb *notary.Notary) []byte {
			e := NewEngine(WithWorkers(4))
			dev, man := e.Table2(pop, 10)
			doc := map[string]any{
				"table2_devices":  dev,
				"table2_makers":   man,
				"figure1":         e.Figure1(pop),
				"headlines":       e.ComputeHeadlines(pop),
				"per_month":       e.SessionsPerMonth(pop),
				"table5":          e.Table5(pop),
				"missing":         e.MissingHandsets(pop),
				"roaming":         e.RoamingCandidates(pop),
				"figure2":         e.Figure2(pop, ndb, 5),
				"trust_attr":      e.ComputeTrustAttribution(pop),
				"table3":          e.Table3(ndb, pop.Universe),
				"figure3":         e.ValidateCategories(ndb, Figure3Categories(pop.Universe)),
				"port_dist":       ndb.PortDistribution(),
				"unexpired":       ndb.NumUnexpired(),
				"unique_entries":  ndb.NumUnique(),
				"total_sessions":  ndb.Sessions(),
				"unique_root_ids": pop.UniqueRootIdentities(),
			}
			raw, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			return raw
		}

		single := notary.New(certgen.Epoch)
		tlsnet.Feed(w, single)
		want := artifact(single)

		for _, shards := range shardCounts {
			cl, err := notaryshard.New(certgen.Epoch, shards)
			if err != nil {
				t.Fatal(err)
			}
			if err := tlsnet.FeedTo(w, cl); err != nil {
				t.Fatalf("seed %d shards %d: feeding cluster: %v", seed, shards, err)
			}
			if got := artifact(cl.Merged()); string(got) != string(want) {
				t.Fatalf("seed %d shards %d: JSON artifact differs from unsharded bytes", seed, shards)
			}
		}
	}
}
