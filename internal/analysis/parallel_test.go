package analysis

import (
	"encoding/json"
	"reflect"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

// workerCounts are the pool sizes every parallel-vs-serial equality test
// runs at: the inline serial path, a typical pool, and a prime count that
// never divides the input evenly.
var workerCounts = []int{1, 4, 17}

// TestParallelMatchesSerial pins the determinism contract for every
// Table/Figure aggregation: an Engine at any worker count returns exactly
// the single-worker (serial-fold) result.
func TestParallelMatchesSerial(t *testing.T) {
	p, n := fixtures(t)
	serial := NewEngine(WithWorkers(1))

	type result struct {
		name string
		fn   func(e *Engine) any
	}
	cases := []result{
		{"Table2", func(e *Engine) any {
			dev, man := e.Table2(p, 10)
			return [2][]CountRow{dev, man}
		}},
		{"Figure1", func(e *Engine) any { return e.Figure1(p) }},
		{"ComputeHeadlines", func(e *Engine) any { return e.ComputeHeadlines(p) }},
		{"SessionsPerMonth", func(e *Engine) any { return e.SessionsPerMonth(p) }},
		{"Table5", func(e *Engine) any { return e.Table5(p) }},
		{"MissingHandsets", func(e *Engine) any { return e.MissingHandsets(p) }},
		{"RoamingCandidates", func(e *Engine) any { return e.RoamingCandidates(p) }},
		{"Figure2", func(e *Engine) any { return e.Figure2(p, n, 10) }},
		{"TrustAttribution", func(e *Engine) any { return e.ComputeTrustAttribution(p) }},
		{"Table3", func(e *Engine) any { return e.Table3(n, p.Universe) }},
		{"Figure3ECDF", func(e *Engine) any {
			return e.ValidateCategories(n, Figure3Categories(p.Universe))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.fn(serial)
			for _, workers := range workerCounts[1:] {
				got := tc.fn(NewEngine(WithWorkers(workers)))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: result differs from serial", workers)
				}
			}
		})
	}
}

// TestArtifactBytesIdenticalAcrossWorkerCounts is the seed-sweep JSON gate:
// for seeds 1–3 the marshalled analysis artifact must be byte-identical
// between a serial and a heavily-sharded engine — same seed, same bytes,
// any worker count.
func TestArtifactBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pop, err := population.Generate(population.Config{Seed: seed, SessionScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		w, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: 500, Universe: pop.Universe})
		if err != nil {
			t.Fatal(err)
		}
		artifact := func(workers int) []byte {
			ndb := notary.New(certgen.Epoch, notary.WithWorkers(workers))
			tlsnet.Feed(w, ndb)
			e := NewEngine(WithWorkers(workers))
			dev, man := e.Table2(pop, 10)
			doc := map[string]any{
				"table2_devices":  dev,
				"table2_makers":   man,
				"figure1":         e.Figure1(pop),
				"headlines":       e.ComputeHeadlines(pop),
				"per_month":       e.SessionsPerMonth(pop),
				"table5":          e.Table5(pop),
				"missing":         e.MissingHandsets(pop),
				"roaming":         e.RoamingCandidates(pop),
				"figure2":         e.Figure2(pop, ndb, 5),
				"trust_attr":      e.ComputeTrustAttribution(pop),
				"table3":          e.Table3(ndb, pop.Universe),
				"figure3":         e.ValidateCategories(ndb, Figure3Categories(pop.Universe)),
				"port_dist":       ndb.PortDistribution(),
				"unexpired":       ndb.NumUnexpired(),
				"unique_entries":  ndb.NumUnique(),
				"total_sessions":  pop.TotalSessions(),
				"unique_root_ids": pop.UniqueRootIdentities(),
			}
			raw, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			return raw
		}
		serial := artifact(1)
		for _, workers := range workerCounts[1:] {
			if got := artifact(workers); string(got) != string(serial) {
				t.Fatalf("seed %d workers %d: JSON artifact differs from serial bytes", seed, workers)
			}
		}
	}
}

// TestNotaryValidateCacheAndWorkersInvariant checks that the chain cache
// and the worker count are invisible in Validate's results: cache on/off
// and every worker count produce deeply equal store reports.
func TestNotaryValidateCacheAndWorkersInvariant(t *testing.T) {
	p, _ := fixtures(t)
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: 7, NumLeaves: 800, Universe: p.Universe})
	if err != nil {
		t.Fatal(err)
	}
	baseline := func() []*notary.StoreReport {
		ndb := notary.New(certgen.Epoch, notary.WithWorkers(1), notary.WithChainCache(nil))
		tlsnet.Feed(w, ndb)
		return ndb.Validate(p.Universe.AOSP("4.4"), p.Universe.Mozilla(), p.Universe.IOS7())
	}()
	for _, workers := range workerCounts {
		for _, cached := range []bool{false, true} {
			opts := []notary.Option{notary.WithWorkers(workers)}
			if !cached {
				opts = append(opts, notary.WithChainCache(nil))
			}
			ndb := notary.New(certgen.Epoch, opts...)
			tlsnet.Feed(w, ndb)
			reports := ndb.Validate(p.Universe.AOSP("4.4"), p.Universe.Mozilla(), p.Universe.IOS7())
			for i, rep := range reports {
				if rep.Validated != baseline[i].Validated ||
					!reflect.DeepEqual(rep.PerRoot, baseline[i].PerRoot) {
					t.Fatalf("workers=%d cached=%v: report %d differs from uncached serial",
						workers, cached, i)
				}
			}
			if cached {
				if st := ndb.CacheStats(); st.Misses == 0 {
					t.Fatalf("workers=%d: cache enabled but never consulted", workers)
				}
			} else if st := ndb.CacheStats(); st.Hits+st.Misses != 0 {
				t.Fatalf("workers=%d: disabled cache recorded lookups %+v", workers, st)
			}
		}
	}
}
