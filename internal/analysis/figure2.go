package analysis

import (
	"crypto/x509"
	"sort"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
)

// Fig2Class is Figure 2's shape legend: where else a non-AOSP certificate
// observed on Android devices is known from.
type Fig2Class string

const (
	ClassMozillaAndIOS7 Fig2Class = "Mozilla, and iOS7"
	ClassIOS7Only       Fig2Class = "iOS7"
	ClassMozillaOnly    Fig2Class = "Mozilla"
	ClassOnlyAndroid    Fig2Class = "Only Android"
	ClassNotRecorded    Fig2Class = "Not recorded by ICSI Notary"
)

// PresenceClass classifies one certificate against the Mozilla and iOS7
// stores and the Notary's records, as Figure 2's legend does.
func PresenceClass(cert *x509.Certificate, p *population.Population, n *notary.Notary) Fig2Class {
	u := p.Universe
	inMoz := u.Mozilla().Contains(cert)
	inIOS := u.IOS7().Contains(cert)
	switch {
	case inMoz && inIOS:
		return ClassMozillaAndIOS7
	case inIOS:
		return ClassIOS7Only
	case inMoz:
		return ClassMozillaOnly
	case n != nil && n.HasRecord(cert):
		return ClassOnlyAndroid
	default:
		return ClassNotRecorded
	}
}

// AttributionCell is one marker of Figure 2: within a manufacturer+version
// or operator group, the fraction of modified-store sessions that carry a
// given non-AOSP certificate.
type AttributionCell struct {
	// Group is "SAMSUNG 4.1" (manufacturer kind) or "VERIZON(US)" (operator
	// kind).
	Group string
	// GroupKind is "manufacturer" or "operator".
	GroupKind string
	// CertName is the certificate's display name (universe catalog name or
	// subject CN for user certs); CertHash is the 8-hex Android subject
	// hash shown in the paper's labels.
	CertName string
	CertHash string
	// Sessions carrying the certificate, and Ratio = Sessions / group's
	// modified-store session total.
	Sessions int
	Ratio    float64
	// Class is the presence-class legend value.
	Class Fig2Class
}

// Figure2 builds the attribution matrix. Groups with fewer than minSessions
// modified-store sessions are omitted, as in the paper ("we omit handset
// manufacturers and operators with fewer than 10 sessions exhibiting
// modified root stores").
func Figure2(p *population.Population, n *notary.Notary, minSessions int) []AttributionCell {
	return defaultEngine.Figure2(p, n, minSessions)
}

// Figure2 builds the attribution matrix; see the package-level Figure2.
func (e *Engine) Figure2(p *population.Population, n *notary.Notary, minSessions int) []AttributionCell {
	u := p.Universe
	nameByID := map[certid.Identity]string{}
	for _, r := range u.Roots() {
		nameByID[corpus.IdentityOf(r.Issued.Cert)] = r.Name
	}

	type groupKey struct{ kind, name string }
	type acc struct {
		groupTotal map[groupKey]int
		certCount  map[groupKey]map[certid.Identity]int
		certObj    map[certid.Identity]*x509.Certificate
	}
	a := accumulate(e, len(p.Sessions),
		func() acc {
			return acc{
				groupTotal: map[groupKey]int{},
				certCount:  map[groupKey]map[certid.Identity]int{},
				certObj:    map[certid.Identity]*x509.Certificate{},
			}
		},
		func(a acc, start, end int) acc {
			for i := start; i < end; i++ {
				h := p.Sessions[i].Handset
				// Rooted handsets are analyzed separately (§4.1: "We analyzed
				// rooted handsets separately from operator and manufacturer
				// root stores to avoid any bias") — see Table5.
				if h.ExtraCount == 0 || h.Rooted {
					continue
				}
				aosp := u.AOSP(h.Version)
				user := h.Device.UserStore()
				groups := []groupKey{
					{"manufacturer", h.Manufacturer + " " + h.Version},
					{"operator", h.Operator + "(" + h.Country + ")"},
				}
				for _, g := range groups {
					a.groupTotal[g]++
					if a.certCount[g] == nil {
						a.certCount[g] = map[certid.Identity]int{}
					}
					for _, c := range h.Store.Certificates() {
						// Attribute firmware additions only: user-installed
						// roots (the §5.2 per-device VPN certificates) are not
						// vendor or operator behaviour.
						if aosp.Contains(c) || user.Contains(c) {
							continue
						}
						id := corpus.IdentityOf(c)
						a.certCount[g][id]++
						a.certObj[id] = c
					}
				}
			}
			return a
		},
		func(into, from acc) acc {
			for g, n := range from.groupTotal {
				into.groupTotal[g] += n
			}
			for g, m := range from.certCount {
				if into.certCount[g] == nil {
					into.certCount[g] = m
					continue
				}
				for id, n := range m {
					into.certCount[g][id] += n
				}
			}
			// The serial loop overwrites certObj on every sighting, so the
			// representative instance is the LAST one in session order:
			// later shards override earlier ones.
			for id, c := range from.certObj {
				into.certObj[id] = c
			}
			return into
		})
	groupTotal, certCount, certObj := a.groupTotal, a.certCount, a.certObj

	var cells []AttributionCell
	for g, total := range groupTotal {
		if total < minSessions {
			continue
		}
		for id, count := range certCount[g] {
			cert := certObj[id]
			name := nameByID[id]
			if name == "" {
				name = cert.Subject.CommonName
			}
			cells = append(cells, AttributionCell{
				Group:     g.name,
				GroupKind: g.kind,
				CertName:  name,
				CertHash:  certid.SubjectHashString(cert),
				Sessions:  count,
				Ratio:     float64(count) / float64(total),
				Class:     PresenceClass(cert, p, n),
			})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.GroupKind != b.GroupKind {
			return a.GroupKind < b.GroupKind
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.CertName < b.CertName
	})
	return cells
}

// ClassShares summarizes the fraction of distinct displayed certificates in
// each presence class — the 6.7% / 16.2% / 37.1% / 40.0% split quoted in §5.
func ClassShares(cells []AttributionCell) map[Fig2Class]float64 {
	classByCert := map[string]Fig2Class{}
	for _, c := range cells {
		classByCert[c.CertName] = c.Class
	}
	if len(classByCert) == 0 {
		return nil
	}
	counts := map[Fig2Class]int{}
	for _, cl := range classByCert {
		counts[cl]++
	}
	out := map[Fig2Class]float64{}
	for cl, n := range counts {
		out[cl] = float64(n) / float64(len(classByCert))
	}
	return out
}
