package analysis

import (
	"crypto/x509"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
)

// Fig2Class is Figure 2's shape legend: where else a non-AOSP certificate
// observed on Android devices is known from.
type Fig2Class string

const (
	ClassMozillaAndIOS7 Fig2Class = "Mozilla, and iOS7"
	ClassIOS7Only       Fig2Class = "iOS7"
	ClassMozillaOnly    Fig2Class = "Mozilla"
	ClassOnlyAndroid    Fig2Class = "Only Android"
	ClassNotRecorded    Fig2Class = "Not recorded by ICSI Notary"
)

// PresenceClass classifies one certificate against the Mozilla and iOS7
// stores and the Notary's records, as Figure 2's legend does.
func PresenceClass(cert *x509.Certificate, p *population.Population, n *notary.Notary) Fig2Class {
	return presenceClass(cert, p.Universe, n)
}

// presenceClass is PresenceClass against a bare universe — what the
// incremental Figure 2 aggregate captures at construction.
func presenceClass(cert *x509.Certificate, u *cauniverse.Universe, n *notary.Notary) Fig2Class {
	inMoz := u.Mozilla().Contains(cert)
	inIOS := u.IOS7().Contains(cert)
	switch {
	case inMoz && inIOS:
		return ClassMozillaAndIOS7
	case inIOS:
		return ClassIOS7Only
	case inMoz:
		return ClassMozillaOnly
	case n != nil && n.HasRecord(cert):
		return ClassOnlyAndroid
	default:
		return ClassNotRecorded
	}
}

// AttributionCell is one marker of Figure 2: within a manufacturer+version
// or operator group, the fraction of modified-store sessions that carry a
// given non-AOSP certificate.
type AttributionCell struct {
	// Group is "SAMSUNG 4.1" (manufacturer kind) or "VERIZON(US)" (operator
	// kind).
	Group string
	// GroupKind is "manufacturer" or "operator".
	GroupKind string
	// CertName is the certificate's display name (universe catalog name or
	// subject CN for user certs); CertHash is the 8-hex Android subject
	// hash shown in the paper's labels.
	CertName string
	CertHash string
	// Sessions carrying the certificate, and Ratio = Sessions / group's
	// modified-store session total.
	Sessions int
	Ratio    float64
	// Class is the presence-class legend value.
	Class Fig2Class
}

// Figure2 builds the attribution matrix. Groups with fewer than minSessions
// modified-store sessions are omitted, as in the paper ("we omit handset
// manufacturers and operators with fewer than 10 sessions exhibiting
// modified root stores").
func Figure2(p *population.Population, n *notary.Notary, minSessions int) []AttributionCell {
	return defaultEngine.Figure2(p, n, minSessions)
}

// Figure2 builds the attribution matrix; see the package-level Figure2.
func (e *Engine) Figure2(p *population.Population, n *notary.Notary, minSessions int) []AttributionCell {
	return reduce(e, p, func() Aggregate[Batch, []AttributionCell] {
		return NewFigure2Aggregate(p.Universe, n, minSessions)
	})
}

// ClassShares summarizes the fraction of distinct displayed certificates in
// each presence class — the 6.7% / 16.2% / 37.1% / 40.0% split quoted in §5.
func ClassShares(cells []AttributionCell) map[Fig2Class]float64 {
	classByCert := map[string]Fig2Class{}
	for _, c := range cells {
		classByCert[c.CertName] = c.Class
	}
	if len(classByCert) == 0 {
		return nil
	}
	counts := map[Fig2Class]int{}
	for _, cl := range classByCert {
		counts[cl]++
	}
	out := map[Fig2Class]float64{}
	for cl, n := range counts {
		out[cl] = float64(n) / float64(len(classByCert))
	}
	return out
}
