package analysis

import (
	"sort"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/population"
)

// operatorRootOwners maps operator-service roots to the operator that
// issues them. §5.2 reasons from these: "the appearance of a root
// certificate issued by an operator different than the operator providing
// the network access suggests a user roaming or traveling abroad" (e.g.
// Telefonica roots observed on Claro networks in Latin America).
var operatorRootOwners = map[string]string{
	"Vodafone (Operator Domain)":        "VODAFONE",
	"Vodafone (Widget Operator Domain)": "VODAFONE",
	"Sprint Nextel Root Authority":      "SPRINT",
	"Sprint XCA01":                      "SPRINT",
	"Cingular Preferred Root CA":        "AT&T",
	"Cingular Trusted Root CA":          "AT&T",
	"Verizon Wireless Network API CA":   "VERIZON",
	"Meditel Root CA":                   "MEDITEL",
	"Telefonica Root CA 1":              "TELEFONICA",
	"Telefonica Root CA 2":              "TELEFONICA",
}

// RoamingCandidate is one handset whose store carries another operator's
// service root — the §5.2 roaming signal.
type RoamingCandidate struct {
	HandsetID       int
	Model           string
	ServingOperator string
	ServingCountry  string
	// RootOwner is the operator that issued the foreign root; RootName the
	// certificate.
	RootOwner string
	RootName  string
}

// RoamingCandidates scans the fleet for operator-service roots observed on
// a different operator's network. Rooted handsets are excluded (their
// stores are not trustworthy evidence of firmware provenance, §4.1).
func RoamingCandidates(p *population.Population) []RoamingCandidate {
	return defaultEngine.RoamingCandidates(p)
}

// RoamingCandidates scans the fleet for operator-service roots observed on
// a different operator's network; see the package-level RoamingCandidates.
func (e *Engine) RoamingCandidates(p *population.Population) []RoamingCandidate {
	u := p.Universe
	owners := map[certid.Identity]struct{ owner, name string }{}
	for name, owner := range operatorRootOwners {
		if r := u.Root(name); r != nil {
			owners[corpus.IdentityOf(r.Issued.Cert)] = struct{ owner, name string }{owner, name}
		}
	}
	out := accumulate(e, len(p.Handsets),
		func() []RoamingCandidate { return nil },
		func(out []RoamingCandidate, start, end int) []RoamingCandidate {
			for i := start; i < end; i++ {
				h := p.Handsets[i]
				if h.Rooted {
					continue
				}
				for _, id := range h.Store.Identities() {
					own, ok := owners[id]
					if !ok || own.owner == h.Operator {
						continue
					}
					out = append(out, RoamingCandidate{
						HandsetID:       h.ID,
						Model:           h.Model,
						ServingOperator: h.Operator,
						ServingCountry:  h.Country,
						RootOwner:       own.owner,
						RootName:        own.name,
					})
				}
			}
			return out
		},
		func(into, from []RoamingCandidate) []RoamingCandidate { return append(into, from...) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].HandsetID != out[j].HandsetID {
			return out[i].HandsetID < out[j].HandsetID
		}
		return out[i].RootName < out[j].RootName
	})
	return out
}
