package analysis

import (
	"crypto/x509"
	"sort"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/stats"
)

// Batch is one contiguous slice of the fleet: a run of handsets together
// with exactly the sessions those handsets emitted. Sessions are emitted
// contiguously per handset in handset order, so any handset range [i, j)
// pairs with the session range [offsets[i], offsets[j]) — Batches and the
// Engine's reduce slice the fleet that way.
type Batch struct {
	Handsets []*population.Handset
	Sessions []*population.Session
}

// Aggregate is an incrementally mergeable analysis: feed batches with Add
// (O(batch) work each), combine partial aggregates with Merge, and read the
// final artifact with Result. Merge must be called in batch order — the
// receiver holding earlier batches, the argument later ones — which keeps
// the few order-sensitive analyses (Table 5's first-sighting CN, Figure 2's
// last-sighting certificate instance) byte-identical to a one-shot fold at
// any batch size or worker count. Merge panics if other is not the same
// concrete aggregate type. Aggregates are not safe for concurrent use; the
// Engine gives each shard its own and merges in ascending shard order.
type Aggregate[B, R any] interface {
	Add(batch B)
	Merge(other Aggregate[B, R])
	Result() R
}

// sessionOffsets returns len(p.Handsets)+1 prefix sums of per-handset
// session counts: handset i owns p.Sessions[offs[i]:offs[i+1]].
func sessionOffsets(p *population.Population) []int {
	offs := make([]int, len(p.Handsets)+1)
	for i, h := range p.Handsets {
		offs[i+1] = offs[i] + h.SessionCount
	}
	return offs
}

// Batches slices p into contiguous batches of up to size handsets each,
// with their sessions — the streaming unit incremental consumers feed to
// Aggregate.Add as new data arrives.
func Batches(p *population.Population, size int) []Batch {
	if size <= 0 {
		size = len(p.Handsets)
	}
	offs := sessionOffsets(p)
	var out []Batch
	for start := 0; start < len(p.Handsets); start += size {
		end := start + size
		if end > len(p.Handsets) {
			end = len(p.Handsets)
		}
		out = append(out, Batch{
			Handsets: p.Handsets[start:end],
			Sessions: p.Sessions[offs[start]:offs[end]],
		})
	}
	return out
}

// reduce folds the whole fleet through fresh aggregates on the engine's
// pool: each worker Adds contiguous handset batches in index order, and the
// shard aggregates Merge in ascending shard order — so the result is
// byte-identical to newAgg().Add(everything).Result() at any worker count.
func reduce[R any](e *Engine, p *population.Population, newAgg func() Aggregate[Batch, R]) R {
	offs := sessionOffsets(p)
	agg := accumulate(e, len(p.Handsets),
		newAgg,
		func(a Aggregate[Batch, R], start, end int) Aggregate[Batch, R] {
			a.Add(Batch{
				Handsets: p.Handsets[start:end],
				Sessions: p.Sessions[offs[start]:offs[end]],
			})
			return a
		},
		func(into, from Aggregate[Batch, R]) Aggregate[Batch, R] {
			into.Merge(from)
			return into
		})
	return agg.Result()
}

// Table2Counts is the full (untruncated) Table 2 aggregation: every device
// and manufacturer with its session count, busiest first.
type Table2Counts struct {
	Devices       []CountRow
	Manufacturers []CountRow
}

type table2Agg struct {
	dev, man map[string]int
}

// NewTable2Aggregate counts sessions per device and per manufacturer.
func NewTable2Aggregate() Aggregate[Batch, Table2Counts] {
	return &table2Agg{dev: map[string]int{}, man: map[string]int{}}
}

func (a *table2Agg) Add(b Batch) {
	for _, s := range b.Sessions {
		a.dev[s.Handset.Manufacturer+" "+s.Handset.Model]++
		a.man[s.Handset.Manufacturer]++
	}
}

func (a *table2Agg) Merge(other Aggregate[Batch, Table2Counts]) {
	o := other.(*table2Agg)
	for k, n := range o.dev {
		a.dev[k] += n
	}
	for k, n := range o.man {
		a.man[k] += n
	}
}

func (a *table2Agg) Result() Table2Counts {
	return Table2Counts{Devices: topK(a.dev, len(a.dev)), Manufacturers: topK(a.man, len(a.man))}
}

type fig1Key struct {
	man, ver   string
	aosp, xtra int
}

type figure1Agg struct {
	counts map[fig1Key]int
}

// NewFigure1Aggregate counts sessions per Figure 1 scatter coordinate.
func NewFigure1Aggregate() Aggregate[Batch, []ScatterPoint] {
	return &figure1Agg{counts: map[fig1Key]int{}}
}

func (a *figure1Agg) Add(b Batch) {
	for _, s := range b.Sessions {
		h := s.Handset
		a.counts[fig1Key{h.Manufacturer, h.Version, h.AOSPCount, h.ExtraCount}]++
	}
}

func (a *figure1Agg) Merge(other Aggregate[Batch, []ScatterPoint]) {
	o := other.(*figure1Agg)
	for k, n := range o.counts {
		a.counts[k] += n
	}
}

func (a *figure1Agg) Result() []ScatterPoint {
	out := make([]ScatterPoint, 0, len(a.counts))
	for k, n := range a.counts {
		out = append(out, ScatterPoint{k.man, k.ver, k.aosp, k.xtra, n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Manufacturer != b.Manufacturer {
			return a.Manufacturer < b.Manufacturer
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		if a.AOSPCerts != b.AOSPCerts {
			return a.AOSPCerts < b.AOSPCerts
		}
		return a.ExtraCerts < b.ExtraCerts
	})
	return out
}

type headlinesAgg struct {
	sessions, handsets                           int
	models                                       map[string]bool
	roots                                        map[certid.Identity]bool
	extended, old, oldOver40, rooted, rootedExcl int
	intercepted, missing                         int
}

// NewHeadlinesAggregate derives the §5/§6 headline numbers incrementally.
func NewHeadlinesAggregate() Aggregate[Batch, Headlines] {
	return &headlinesAgg{models: map[string]bool{}, roots: map[certid.Identity]bool{}}
}

func (a *headlinesAgg) Add(b Batch) {
	for _, h := range b.Handsets {
		a.handsets++
		if h.MissingCount > 0 {
			a.missing++
		}
		for _, id := range h.Store.Identities() {
			a.roots[id] = true
		}
	}
	for _, s := range b.Sessions {
		a.sessions++
		hs := s.Handset
		a.models[hs.Manufacturer+"/"+hs.Model] = true
		if hs.ExtraCount > 0 {
			a.extended++
		}
		if hs.Version == "4.1" || hs.Version == "4.2" {
			a.old++
			if hs.ExtraCount > 40 {
				a.oldOver40++
			}
		}
		if hs.Rooted {
			a.rooted++
			if hs.RootedExclusive {
				a.rootedExcl++
			}
		}
		if s.Intercepted {
			a.intercepted++
		}
	}
}

func (a *headlinesAgg) Merge(other Aggregate[Batch, Headlines]) {
	o := other.(*headlinesAgg)
	a.sessions += o.sessions
	a.handsets += o.handsets
	for m := range o.models {
		a.models[m] = true
	}
	for id := range o.roots {
		a.roots[id] = true
	}
	a.extended += o.extended
	a.old += o.old
	a.oldOver40 += o.oldOver40
	a.rooted += o.rooted
	a.rootedExcl += o.rootedExcl
	a.intercepted += o.intercepted
	a.missing += o.missing
}

func (a *headlinesAgg) Result() Headlines {
	h := Headlines{
		TotalSessions:       a.sessions,
		Handsets:            a.handsets,
		Models:              len(a.models),
		UniqueRoots:         len(a.roots),
		MissingHandsets:     a.missing,
		InterceptedSessions: a.intercepted,
	}
	if a.sessions > 0 {
		h.ExtendedFraction = float64(a.extended) / float64(a.sessions)
		h.RootedFraction = float64(a.rooted) / float64(a.sessions)
	}
	if a.old > 0 {
		h.Over40Fraction41_42 = float64(a.oldOver40) / float64(a.old)
	}
	if a.rooted > 0 {
		h.RootedExclusiveOfRoots = float64(a.rootedExcl) / float64(a.rooted)
	}
	return h
}

type monthsAgg struct {
	counts map[string]int
}

// NewMonthsAggregate histograms sessions over the collection window.
func NewMonthsAggregate() Aggregate[Batch, []MonthCount] {
	return &monthsAgg{counts: map[string]int{}}
}

func (a *monthsAgg) Add(b Batch) {
	for _, s := range b.Sessions {
		a.counts[s.At.Format("2006-01")]++
	}
}

func (a *monthsAgg) Merge(other Aggregate[Batch, []MonthCount]) {
	o := other.(*monthsAgg)
	for m, n := range o.counts {
		a.counts[m] += n
	}
}

func (a *monthsAgg) Result() []MonthCount {
	months := make([]string, 0, len(a.counts))
	for m := range a.counts {
		months = append(months, m)
	}
	sort.Strings(months)
	out := make([]MonthCount, len(months))
	for i, m := range months {
		out[i] = MonthCount{Month: m, Sessions: a.counts[m]}
	}
	return out
}

type rootTally struct {
	rooted, nonRooted int
	subject           string
}

type table5Agg struct {
	u      *cauniverse.Universe
	aosp44 *rootstore.Store
	counts map[certid.Identity]*rootTally
	cn     map[certid.Identity]string
}

// NewTable5Aggregate detects certificates appearing exclusively on rooted
// handsets (the §6 methodology), incrementally over handset batches.
func NewTable5Aggregate(u *cauniverse.Universe) Aggregate[Batch, []RootedExclusive] {
	return &table5Agg{
		u:      u,
		aosp44: u.AOSP("4.4"),
		counts: map[certid.Identity]*rootTally{},
		cn:     map[certid.Identity]string{},
	}
}

func (a *table5Agg) Add(b Batch) {
	// The CN recorded for an identity is the one carried by the first
	// handset (in fleet order) that introduced it — order-sensitive, and
	// deterministic because batches Add in fleet order and Merge keeps the
	// earlier aggregate's sighting.
	for _, h := range b.Handsets {
		for _, id := range h.Store.Identities() {
			if a.aosp44.ContainsIdentity(id) {
				continue
			}
			t := a.counts[id]
			if t == nil {
				t = &rootTally{subject: id.Subject}
				a.counts[id] = t
				if c := h.Store.Get(id); c != nil {
					a.cn[id] = c.Subject.CommonName
				}
			}
			if h.Rooted {
				t.rooted++
			} else {
				t.nonRooted++
			}
		}
	}
}

func (a *table5Agg) Merge(other Aggregate[Batch, []RootedExclusive]) {
	o := other.(*table5Agg)
	for id, t := range o.counts {
		if have := a.counts[id]; have != nil {
			have.rooted += t.rooted
			have.nonRooted += t.nonRooted
			continue
		}
		a.counts[id] = t
		// The CN travels with the identity's creating batch only: later
		// batches never override an earlier first sighting.
		if name, ok := o.cn[id]; ok {
			a.cn[id] = name
		}
	}
}

func (a *table5Agg) Result() []RootedExclusive {
	nameByID := map[certid.Identity]string{}
	for _, r := range a.u.Roots() {
		nameByID[corpus.IdentityOf(r.Issued.Cert)] = r.Name
	}
	var out []RootedExclusive
	for id, t := range a.counts {
		if t.rooted >= 1 && t.nonRooted == 0 {
			name := nameByID[id]
			if name == "" {
				name = a.cn[id]
			}
			if name == "" {
				name = id.Subject
			}
			out = append(out, RootedExclusive{Subject: id.Subject, Name: name, Devices: t.rooted})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].Name < out[j].Name
	})
	return out
}

type fig2GroupKey struct{ kind, name string }

type figure2Agg struct {
	u           *cauniverse.Universe
	n           *notary.Notary
	minSessions int
	groupTotal  map[fig2GroupKey]int
	certCount   map[fig2GroupKey]map[certid.Identity]int
	certObj     map[certid.Identity]*x509.Certificate
}

// NewFigure2Aggregate builds the Figure 2 attribution matrix incrementally
// over session batches. Groups with fewer than minSessions modified-store
// sessions are omitted at Result time.
func NewFigure2Aggregate(u *cauniverse.Universe, n *notary.Notary, minSessions int) Aggregate[Batch, []AttributionCell] {
	return &figure2Agg{
		u:           u,
		n:           n,
		minSessions: minSessions,
		groupTotal:  map[fig2GroupKey]int{},
		certCount:   map[fig2GroupKey]map[certid.Identity]int{},
		certObj:     map[certid.Identity]*x509.Certificate{},
	}
}

func (a *figure2Agg) Add(b Batch) {
	for _, s := range b.Sessions {
		h := s.Handset
		// Rooted handsets are analyzed separately (§4.1: "We analyzed
		// rooted handsets separately from operator and manufacturer
		// root stores to avoid any bias") — see Table5.
		if h.ExtraCount == 0 || h.Rooted {
			continue
		}
		aosp := a.u.AOSP(h.Version)
		user := h.Device.UserStore()
		groups := []fig2GroupKey{
			{"manufacturer", h.Manufacturer + " " + h.Version},
			{"operator", h.Operator + "(" + h.Country + ")"},
		}
		for _, g := range groups {
			a.groupTotal[g]++
			if a.certCount[g] == nil {
				a.certCount[g] = map[certid.Identity]int{}
			}
			for _, c := range h.Store.Certificates() {
				// Attribute firmware additions only: user-installed
				// roots (the §5.2 per-device VPN certificates) are not
				// vendor or operator behaviour.
				if aosp.Contains(c) || user.Contains(c) {
					continue
				}
				id := corpus.IdentityOf(c)
				a.certCount[g][id]++
				a.certObj[id] = c
			}
		}
	}
}

func (a *figure2Agg) Merge(other Aggregate[Batch, []AttributionCell]) {
	o := other.(*figure2Agg)
	for g, n := range o.groupTotal {
		a.groupTotal[g] += n
	}
	for g, m := range o.certCount {
		if a.certCount[g] == nil {
			a.certCount[g] = m
			continue
		}
		for id, n := range m {
			a.certCount[g][id] += n
		}
	}
	// Serial Adds overwrite certObj on every sighting, so the
	// representative instance is the LAST one in session order: the later
	// aggregate overrides the earlier one.
	for id, c := range o.certObj {
		a.certObj[id] = c
	}
}

func (a *figure2Agg) Result() []AttributionCell {
	nameByID := map[certid.Identity]string{}
	for _, r := range a.u.Roots() {
		nameByID[corpus.IdentityOf(r.Issued.Cert)] = r.Name
	}
	var cells []AttributionCell
	for g, total := range a.groupTotal {
		if total < a.minSessions {
			continue
		}
		for id, count := range a.certCount[g] {
			cert := a.certObj[id]
			name := nameByID[id]
			if name == "" {
				name = cert.Subject.CommonName
			}
			cells = append(cells, AttributionCell{
				Group:     g.name,
				GroupKind: g.kind,
				CertName:  name,
				CertHash:  certid.SubjectHashString(cert),
				Sessions:  count,
				Ratio:     float64(count) / float64(total),
				Class:     presenceClass(cert, a.u, a.n),
			})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.GroupKind != b.GroupKind {
			return a.GroupKind < b.GroupKind
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.CertName < b.CertName
	})
	return cells
}

type validationAgg struct {
	cats      []Category
	perRoot   map[certid.Identity]int
	validated []int
}

// NewValidationAggregate runs the Notary validation projection (Tables 3–4,
// Figure 3) incrementally over batches of leaf attributions — the output of
// Notary.AttributeLeaves over slices of Notary.UnexpiredLeafRefs. Leaf
// attribution is commutative, so Merge order cannot change the result.
func NewValidationAggregate(cats []Category) Aggregate[[]notary.LeafAttribution, []CategoryValidation] {
	return &validationAgg{
		cats:      cats,
		perRoot:   map[certid.Identity]int{},
		validated: make([]int, len(cats)),
	}
}

func (a *validationAgg) Add(attrs []notary.LeafAttribution) {
	for _, la := range attrs {
		for _, id := range la.Roots {
			a.perRoot[id]++
		}
		for ci, c := range a.cats {
			for _, id := range la.Roots {
				if c.Store.ContainsIdentity(id) {
					a.validated[ci]++
					break
				}
			}
		}
	}
}

func (a *validationAgg) Merge(other Aggregate[[]notary.LeafAttribution, []CategoryValidation]) {
	o := other.(*validationAgg)
	for id, n := range o.perRoot {
		a.perRoot[id] += n
	}
	for i, v := range o.validated {
		a.validated[i] += v
	}
}

func (a *validationAgg) Result() []CategoryValidation {
	out := make([]CategoryValidation, len(a.cats))
	for i, c := range a.cats {
		rep := &notary.StoreReport{
			Store:     c.Store,
			Validated: a.validated[i],
			PerRoot:   make(map[certid.Identity]int, c.Store.Len()),
		}
		for _, id := range c.Store.Identities() {
			rep.PerRoot[id] = a.perRoot[id]
		}
		out[i] = CategoryValidation{
			Name:         c.Name,
			TotalRoots:   c.Store.Len(),
			ZeroFraction: rep.ZeroValidationFraction(),
			Validated:    rep.Validated,
			ECDF:         stats.NewECDF(rep.PerRootCounts()),
		}
	}
	return out
}
