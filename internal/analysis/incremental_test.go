package analysis

import (
	"encoding/json"
	"testing"

	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

var batchSizes = []int{1, 7, 64}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkIncremental verifies the Aggregate contract for one analysis: feeding
// batches one Add at a time, and merging independent per-batch aggregates in
// batch order, are both byte-identical to a single Add of the whole fleet.
func checkIncremental[R any](t *testing.T, name string, p *population.Population, newAgg func() Aggregate[Batch, R]) {
	t.Helper()
	oneShot := newAgg()
	oneShot.Add(Batch{Handsets: p.Handsets, Sessions: p.Sessions})
	want := mustJSON(t, oneShot.Result())
	for _, size := range batchSizes {
		seq, merged := newAgg(), newAgg()
		for _, b := range Batches(p, size) {
			seq.Add(b)
			part := newAgg()
			part.Add(b)
			merged.Merge(part)
		}
		if got := mustJSON(t, seq.Result()); got != want {
			t.Errorf("%s: sequential Adds at batch size %d diverge from one-shot", name, size)
		}
		if got := mustJSON(t, merged.Result()); got != want {
			t.Errorf("%s: ordered Merge at batch size %d diverges from one-shot", name, size)
		}
	}
}

func TestAggregatesIncrementalEqualsOneShot(t *testing.T) {
	p, n := fixtures(t)
	checkIncremental(t, "Table2", p, NewTable2Aggregate)
	checkIncremental(t, "Figure1", p, NewFigure1Aggregate)
	checkIncremental(t, "Headlines", p, NewHeadlinesAggregate)
	checkIncremental(t, "Months", p, NewMonthsAggregate)
	checkIncremental(t, "Table5", p, func() Aggregate[Batch, []RootedExclusive] {
		return NewTable5Aggregate(p.Universe)
	})
	checkIncremental(t, "Figure2", p, func() Aggregate[Batch, []AttributionCell] {
		return NewFigure2Aggregate(p.Universe, n, 10)
	})
	checkIncremental(t, "TrustAttribution", p, NewTrustAttributionAggregate)
}

// TestBatchesPartition checks Batches hands out every handset exactly once
// with exactly its own contiguous sessions.
func TestBatchesPartition(t *testing.T) {
	p, _ := fixtures(t)
	for _, size := range batchSizes {
		var handsets, sessions int
		for _, b := range Batches(p, size) {
			if size > 0 && len(b.Handsets) > size {
				t.Fatalf("batch holds %d handsets, cap %d", len(b.Handsets), size)
			}
			want := 0
			for _, h := range b.Handsets {
				want += h.SessionCount
			}
			if len(b.Sessions) != want {
				t.Fatalf("batch pairs %d sessions with handsets owning %d", len(b.Sessions), want)
			}
			for _, s := range b.Sessions {
				found := false
				for _, h := range b.Handsets {
					if s.Handset == h {
						found = true
						break
					}
				}
				if !found {
					t.Fatal("batch carries a session of a foreign handset")
				}
			}
			handsets += len(b.Handsets)
			sessions += len(b.Sessions)
		}
		if handsets != len(p.Handsets) || sessions != len(p.Sessions) {
			t.Fatalf("batches cover %d/%d handsets/sessions, want %d/%d",
				handsets, sessions, len(p.Handsets), len(p.Sessions))
		}
	}
}

// TestValidationAggregateIncremental attributes the Notary's leaves in
// chunks — rebuilding the attribution per chunk, as a streaming consumer
// would — and checks the merged projection matches one attribution pass.
func TestValidationAggregateIncremental(t *testing.T) {
	p, n := fixtures(t)
	cats := Figure3Categories(p.Universe)
	stores := make([]*rootstore.Store, len(cats))
	for i, c := range cats {
		stores[i] = c.Store
	}
	leaves := n.UnexpiredLeafRefs()
	oneShot := NewValidationAggregate(cats)
	oneShot.Add(n.AttributeLeaves(stores, leaves))
	want := mustJSON(t, oneShot.Result())

	for _, chunk := range []int{100, 999} {
		merged := NewValidationAggregate(cats)
		for start := 0; start < len(leaves); start += chunk {
			end := start + chunk
			if end > len(leaves) {
				end = len(leaves)
			}
			part := NewValidationAggregate(cats)
			part.Add(n.AttributeLeaves(stores, leaves[start:end]))
			merged.Merge(part)
		}
		if got := mustJSON(t, merged.Result()); got != want {
			t.Errorf("chunked leaf attribution (chunk %d) diverges from one pass", chunk)
		}
	}

	// The engine path is the same projection.
	if got := mustJSON(t, NewEngine().ValidateCategories(n, cats)); got != want {
		t.Errorf("Engine.ValidateCategories diverges from the validation aggregate")
	}
}

// TestEngineMatchesOneShotAggregates pins the acceptance matrix: for seeds
// 1–3 the engine's sharded reduce is byte-identical to a one-shot aggregate
// fold at every worker count.
func TestEngineMatchesOneShotAggregates(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p, err := population.Generate(population.Config{Seed: seed, SessionScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		whole := Batch{Handsets: p.Handsets, Sessions: p.Sessions}
		type artifact struct {
			name string
			want string
			got  func(e *Engine) any
		}
		t2 := NewTable2Aggregate()
		f1 := NewFigure1Aggregate()
		hl := NewHeadlinesAggregate()
		mo := NewMonthsAggregate()
		t5 := NewTable5Aggregate(p.Universe)
		f2 := NewFigure2Aggregate(p.Universe, nil, 10)
		ta := NewTrustAttributionAggregate()
		for _, a := range []interface{ Add(Batch) }{t2, f1, hl, mo, t5, f2, ta} {
			a.Add(whole)
		}
		arts := []artifact{
			{"Table2", mustJSON(t, t2.Result()), func(e *Engine) any {
				d, m := e.Table2(p, len(p.Handsets))
				return Table2Counts{Devices: d, Manufacturers: m}
			}},
			{"Figure1", mustJSON(t, f1.Result()), func(e *Engine) any { return e.Figure1(p) }},
			{"Headlines", mustJSON(t, hl.Result()), func(e *Engine) any { return e.ComputeHeadlines(p) }},
			{"Months", mustJSON(t, mo.Result()), func(e *Engine) any { return e.SessionsPerMonth(p) }},
			{"Table5", mustJSON(t, t5.Result()), func(e *Engine) any { return e.Table5(p) }},
			{"Figure2", mustJSON(t, f2.Result()), func(e *Engine) any { return e.Figure2(p, nil, 10) }},
			{"TrustAttribution", mustJSON(t, ta.Result()), func(e *Engine) any { return e.ComputeTrustAttribution(p) }},
		}
		for _, w := range workerCounts {
			e := NewEngine(WithWorkers(w))
			for _, a := range arts {
				if got := mustJSON(t, a.got(e)); got != a.want {
					t.Errorf("seed %d workers %d: %s diverges from one-shot aggregate", seed, w, a.name)
				}
			}
		}
	}
}
