package analysis

import (
	"context"

	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
)

// Engine runs the package's fleet-scale aggregations on the parallel
// fan-out engine. The zero-argument NewEngine() sizes the pool by
// GOMAXPROCS and records nothing; every package-level analysis function
// delegates to such a default engine, so the Engine only needs constructing
// explicitly to pin the worker count or attach an observer.
//
// Results are deterministic at any worker count: each aggregation folds
// contiguous session/handset shards in index order and merges the shard
// accumulators in ascending shard order (see package parallel), so the
// Engine's answers are byte-identical to a serial fold — the property the
// parallel-vs-serial equality tests pin at worker counts 1, 4 and 17.
type Engine struct {
	workers  int
	observer *obs.Observer
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithWorkers bounds the fan-out. Values < 1 (the default) mean
// runtime.GOMAXPROCS.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithObserver instruments the engine's fan-outs with the parallel.*
// spans and counters. Nil observers no-op.
func WithObserver(o *obs.Observer) EngineOption {
	return func(e *Engine) { e.observer = o }
}

// NewEngine returns an analysis engine.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// defaultEngine backs the package-level analysis functions.
var defaultEngine = NewEngine()

// popts expands the engine's configuration into fan-out options.
func (e *Engine) popts() []parallel.Option {
	return []parallel.Option{parallel.WithWorkers(e.workers), parallel.WithObserver(e.observer)}
}

// accumulate folds [0, n) on the engine's pool. Aggregations cannot fail
// and run under a background context, so the error is dropped by design.
func accumulate[A any](e *Engine, n int, newA func() A, fold func(acc A, start, end int) A, merge func(into, from A) A) A {
	acc, _ := parallel.Accumulate(context.Background(), n, newA, fold, merge, e.popts()...)
	return acc
}
