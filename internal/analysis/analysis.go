// Package analysis is the core of the reproduction: the root-store audit
// pipeline that turns the raw substrates (CA universe, device population,
// Notary) into every result the paper reports — store-size and overlap
// tables, the extended-store scatter of Figure 1, the certificate
// attribution matrix of Figure 2, the validation analyses of Tables 3–4 and
// Figure 3, and the rooted-device exclusives of Table 5.
package analysis

import (
	"sort"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

// StoreSize is one row of Table 1.
type StoreSize struct {
	Name  string
	Certs int
}

// Table1 reports the number of certificates in each studied root store.
func Table1(u *cauniverse.Universe) []StoreSize {
	out := []StoreSize{}
	for _, v := range cauniverse.AOSPVersions() {
		out = append(out, StoreSize{"AOSP " + v, u.AOSP(v).Len()})
	}
	out = append(out,
		StoreSize{"iOS7", u.IOS7().Len()},
		StoreSize{"Mozilla", u.Mozilla().Len()},
	)
	return out
}

// CountRow is a (name, sessions) pair for Table 2.
type CountRow struct {
	Name     string
	Sessions int
}

// Table2 returns the top-k devices and manufacturers by session count.
func Table2(p *population.Population, k int) (devices, manufacturers []CountRow) {
	return defaultEngine.Table2(p, k)
}

// Table2 returns the top-k devices and manufacturers by session count.
func (e *Engine) Table2(p *population.Population, k int) (devices, manufacturers []CountRow) {
	c := reduce(e, p, NewTable2Aggregate)
	return truncRows(c.Devices, k), truncRows(c.Manufacturers, k)
}

func truncRows(rows []CountRow, k int) []CountRow {
	if k < len(rows) {
		return rows[:k]
	}
	return rows
}

func topK(m map[string]int, k int) []CountRow {
	rows := make([]CountRow, 0, len(m))
	for name, n := range m {
		rows = append(rows, CountRow{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Sessions != rows[j].Sessions {
			return rows[i].Sessions > rows[j].Sessions
		}
		return rows[i].Name < rows[j].Name
	})
	if k < len(rows) {
		rows = rows[:k]
	}
	return rows
}

// ScatterPoint is one Figure 1 marker: sessions observed at a given
// (manufacturer, version, AOSP-count, extra-count) coordinate.
type ScatterPoint struct {
	Manufacturer string
	Version      string
	AOSPCerts    int
	ExtraCerts   int
	Sessions     int
}

// Figure1 aggregates the fleet into the extended-store scatter: how many
// sessions sit at each (AOSP certs, additional certs) coordinate per
// manufacturer and OS version.
func Figure1(p *population.Population) []ScatterPoint {
	return defaultEngine.Figure1(p)
}

// Figure1 aggregates the fleet into the extended-store scatter.
func (e *Engine) Figure1(p *population.Population) []ScatterPoint {
	return reduce(e, p, NewFigure1Aggregate)
}

// MarkerSize buckets a session count into Figure 1's log2 marker-size
// legend (1, 64, 256, 512, 1024): the returned value is the legend entry the
// count falls under.
func MarkerSize(sessions int) int {
	switch {
	case sessions >= 1024:
		return 1024
	case sessions >= 512:
		return 512
	case sessions >= 256:
		return 256
	case sessions >= 64:
		return 64
	default:
		return 1
	}
}

// Headlines are the §5/§6 prose numbers.
type Headlines struct {
	TotalSessions          int
	Handsets               int
	Models                 int
	UniqueRoots            int
	ExtendedFraction       float64 // sessions with extra certs (≈0.39)
	MissingHandsets        int     // handsets missing AOSP certs (5)
	Over40Fraction41_42    float64 // 4.1/4.2 sessions with >40 additions (>0.10)
	RootedFraction         float64 // sessions on rooted handsets (≈0.24)
	RootedExclusiveOfRoots float64 // rooted sessions with rooted-only certs (≈0.06)
	InterceptedSessions    int     // exactly 1
}

// ComputeHeadlines derives the §5/§6 headline numbers from the fleet.
func ComputeHeadlines(p *population.Population) Headlines {
	return defaultEngine.ComputeHeadlines(p)
}

// ComputeHeadlines derives the §5/§6 headline numbers from the fleet.
func (e *Engine) ComputeHeadlines(p *population.Population) Headlines {
	return reduce(e, p, NewHeadlinesAggregate)
}

// MonthCount is one month of the collection window with its session count.
type MonthCount struct {
	Month    string // "2013-11"
	Sessions int
}

// SessionsPerMonth histograms the fleet's sessions over the §4.1 collection
// window (November 2013 – April 2014).
func SessionsPerMonth(p *population.Population) []MonthCount {
	return defaultEngine.SessionsPerMonth(p)
}

// SessionsPerMonth histograms the fleet's sessions over the collection
// window.
func (e *Engine) SessionsPerMonth(p *population.Population) []MonthCount {
	return reduce(e, p, NewMonthsAggregate)
}

// RootedExclusive is one Table 5 row: a root found exclusively on rooted
// handsets.
type RootedExclusive struct {
	Subject string
	Name    string // universe catalog name if known, else the subject CN
	Devices int
}

// Table5 detects certificates that appear exclusively on rooted handsets —
// the §6 methodology. AOSP members are excluded (every handset carries
// them); anything else present on ≥1 rooted and 0 non-rooted handsets is
// reported, sorted by device count.
func Table5(p *population.Population) []RootedExclusive {
	return defaultEngine.Table5(p)
}

// Table5 detects certificates that appear exclusively on rooted handsets.
func (e *Engine) Table5(p *population.Population) []RootedExclusive {
	return reduce(e, p, func() Aggregate[Batch, []RootedExclusive] {
		return NewTable5Aggregate(p.Universe)
	})
}

// MissingReport lists the handsets missing AOSP roots (§5's "only 5
// handsets").
type MissingReport struct {
	HandsetID int
	Model     string
	Version   string
	Missing   int
}

// MissingHandsets reports every handset whose store lacks AOSP roots.
func MissingHandsets(p *population.Population) []MissingReport {
	return defaultEngine.MissingHandsets(p)
}

// MissingHandsets reports every handset whose store lacks AOSP roots.
func (e *Engine) MissingHandsets(p *population.Population) []MissingReport {
	out := accumulate(e, len(p.Handsets),
		func() []MissingReport { return nil },
		func(out []MissingReport, start, end int) []MissingReport {
			for i := start; i < end; i++ {
				h := p.Handsets[i]
				if h.MissingCount > 0 {
					out = append(out, MissingReport{h.ID, h.Model, h.Version, h.MissingCount})
				}
			}
			return out
		},
		func(into, from []MissingReport) []MissingReport { return append(into, from...) })
	sort.Slice(out, func(i, j int) bool { return out[i].HandsetID < out[j].HandsetID })
	return out
}

// OverlapReport quantifies §2's AOSP/Mozilla overlap both ways.
type OverlapReport struct {
	Equivalent    int // subject+key equivalence (Table 4's 130)
	ByteIdentical int // byte-level identity (§2's 117)
}

// MozillaOverlap computes the AOSP 4.4 ∩ Mozilla overlap under both
// identity notions — the ablation behind choosing equivalence.
func MozillaOverlap(u *cauniverse.Universe) OverlapReport {
	return OverlapReport{
		Equivalent:    rootstore.Intersect("i", u.AOSP("4.4"), u.Mozilla()).Len(),
		ByteIdentical: rootstore.ByteIntersectCount(u.AOSP("4.4"), u.Mozilla()),
	}
}
