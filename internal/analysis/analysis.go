// Package analysis is the core of the reproduction: the root-store audit
// pipeline that turns the raw substrates (CA universe, device population,
// Notary) into every result the paper reports — store-size and overlap
// tables, the extended-store scatter of Figure 1, the certificate
// attribution matrix of Figure 2, the validation analyses of Tables 3–4 and
// Figure 3, and the rooted-device exclusives of Table 5.
package analysis

import (
	"sort"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

// StoreSize is one row of Table 1.
type StoreSize struct {
	Name  string
	Certs int
}

// Table1 reports the number of certificates in each studied root store.
func Table1(u *cauniverse.Universe) []StoreSize {
	out := []StoreSize{}
	for _, v := range cauniverse.AOSPVersions() {
		out = append(out, StoreSize{"AOSP " + v, u.AOSP(v).Len()})
	}
	out = append(out,
		StoreSize{"iOS7", u.IOS7().Len()},
		StoreSize{"Mozilla", u.Mozilla().Len()},
	)
	return out
}

// CountRow is a (name, sessions) pair for Table 2.
type CountRow struct {
	Name     string
	Sessions int
}

// Table2 returns the top-k devices and manufacturers by session count.
func Table2(p *population.Population, k int) (devices, manufacturers []CountRow) {
	return defaultEngine.Table2(p, k)
}

// Table2 returns the top-k devices and manufacturers by session count.
func (e *Engine) Table2(p *population.Population, k int) (devices, manufacturers []CountRow) {
	type acc struct{ dev, man map[string]int }
	a := accumulate(e, len(p.Sessions),
		func() acc { return acc{dev: map[string]int{}, man: map[string]int{}} },
		func(a acc, start, end int) acc {
			for i := start; i < end; i++ {
				s := p.Sessions[i]
				a.dev[s.Handset.Manufacturer+" "+s.Handset.Model]++
				a.man[s.Handset.Manufacturer]++
			}
			return a
		},
		func(into, from acc) acc {
			for k, n := range from.dev {
				into.dev[k] += n
			}
			for k, n := range from.man {
				into.man[k] += n
			}
			return into
		})
	return topK(a.dev, k), topK(a.man, k)
}

func topK(m map[string]int, k int) []CountRow {
	rows := make([]CountRow, 0, len(m))
	for name, n := range m {
		rows = append(rows, CountRow{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Sessions != rows[j].Sessions {
			return rows[i].Sessions > rows[j].Sessions
		}
		return rows[i].Name < rows[j].Name
	})
	if k < len(rows) {
		rows = rows[:k]
	}
	return rows
}

// ScatterPoint is one Figure 1 marker: sessions observed at a given
// (manufacturer, version, AOSP-count, extra-count) coordinate.
type ScatterPoint struct {
	Manufacturer string
	Version      string
	AOSPCerts    int
	ExtraCerts   int
	Sessions     int
}

// Figure1 aggregates the fleet into the extended-store scatter: how many
// sessions sit at each (AOSP certs, additional certs) coordinate per
// manufacturer and OS version.
func Figure1(p *population.Population) []ScatterPoint {
	return defaultEngine.Figure1(p)
}

// Figure1 aggregates the fleet into the extended-store scatter.
func (e *Engine) Figure1(p *population.Population) []ScatterPoint {
	type key struct {
		man, ver   string
		aosp, xtra int
	}
	agg := accumulate(e, len(p.Sessions),
		func() map[key]int { return map[key]int{} },
		func(agg map[key]int, start, end int) map[key]int {
			for i := start; i < end; i++ {
				h := p.Sessions[i].Handset
				agg[key{h.Manufacturer, h.Version, h.AOSPCount, h.ExtraCount}]++
			}
			return agg
		},
		func(into, from map[key]int) map[key]int {
			for k, n := range from {
				into[k] += n
			}
			return into
		})
	out := make([]ScatterPoint, 0, len(agg))
	for k, n := range agg {
		out = append(out, ScatterPoint{k.man, k.ver, k.aosp, k.xtra, n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Manufacturer != b.Manufacturer {
			return a.Manufacturer < b.Manufacturer
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		if a.AOSPCerts != b.AOSPCerts {
			return a.AOSPCerts < b.AOSPCerts
		}
		return a.ExtraCerts < b.ExtraCerts
	})
	return out
}

// MarkerSize buckets a session count into Figure 1's log2 marker-size
// legend (1, 64, 256, 512, 1024): the returned value is the legend entry the
// count falls under.
func MarkerSize(sessions int) int {
	switch {
	case sessions >= 1024:
		return 1024
	case sessions >= 512:
		return 512
	case sessions >= 256:
		return 256
	case sessions >= 64:
		return 64
	default:
		return 1
	}
}

// Headlines are the §5/§6 prose numbers.
type Headlines struct {
	TotalSessions          int
	Handsets               int
	Models                 int
	UniqueRoots            int
	ExtendedFraction       float64 // sessions with extra certs (≈0.39)
	MissingHandsets        int     // handsets missing AOSP certs (5)
	Over40Fraction41_42    float64 // 4.1/4.2 sessions with >40 additions (>0.10)
	RootedFraction         float64 // sessions on rooted handsets (≈0.24)
	RootedExclusiveOfRoots float64 // rooted sessions with rooted-only certs (≈0.06)
	InterceptedSessions    int     // exactly 1
}

// ComputeHeadlines derives the §5/§6 headline numbers from the fleet.
func ComputeHeadlines(p *population.Population) Headlines {
	return defaultEngine.ComputeHeadlines(p)
}

// ComputeHeadlines derives the §5/§6 headline numbers from the fleet.
func (e *Engine) ComputeHeadlines(p *population.Population) Headlines {
	h := Headlines{
		TotalSessions:    p.TotalSessions(),
		Handsets:         len(p.Handsets),
		UniqueRoots:      p.UniqueRootIdentities(),
		ExtendedFraction: p.ExtendedSessionFraction(),
		RootedFraction:   p.RootedSessionFraction(),
	}
	type acc struct {
		models                                     map[string]bool
		old, oldOver40, rooted, rootedExcl, intcpt int
	}
	a := accumulate(e, len(p.Sessions),
		func() acc { return acc{models: map[string]bool{}} },
		func(a acc, start, end int) acc {
			for i := start; i < end; i++ {
				s := p.Sessions[i]
				hs := s.Handset
				a.models[hs.Manufacturer+"/"+hs.Model] = true
				if hs.Version == "4.1" || hs.Version == "4.2" {
					a.old++
					if hs.ExtraCount > 40 {
						a.oldOver40++
					}
				}
				if hs.Rooted {
					a.rooted++
					if hs.RootedExclusive {
						a.rootedExcl++
					}
				}
				if s.Intercepted {
					a.intcpt++
				}
			}
			return a
		},
		func(into, from acc) acc {
			for m := range from.models {
				into.models[m] = true
			}
			into.old += from.old
			into.oldOver40 += from.oldOver40
			into.rooted += from.rooted
			into.rootedExcl += from.rootedExcl
			into.intcpt += from.intcpt
			return into
		})
	h.InterceptedSessions = a.intcpt
	h.Models = len(a.models)
	if a.old > 0 {
		h.Over40Fraction41_42 = float64(a.oldOver40) / float64(a.old)
	}
	if a.rooted > 0 {
		h.RootedExclusiveOfRoots = float64(a.rootedExcl) / float64(a.rooted)
	}
	for _, hs := range p.Handsets {
		if hs.MissingCount > 0 {
			h.MissingHandsets++
		}
	}
	return h
}

// MonthCount is one month of the collection window with its session count.
type MonthCount struct {
	Month    string // "2013-11"
	Sessions int
}

// SessionsPerMonth histograms the fleet's sessions over the §4.1 collection
// window (November 2013 – April 2014).
func SessionsPerMonth(p *population.Population) []MonthCount {
	return defaultEngine.SessionsPerMonth(p)
}

// SessionsPerMonth histograms the fleet's sessions over the collection
// window.
func (e *Engine) SessionsPerMonth(p *population.Population) []MonthCount {
	counts := accumulate(e, len(p.Sessions),
		func() map[string]int { return map[string]int{} },
		func(counts map[string]int, start, end int) map[string]int {
			for i := start; i < end; i++ {
				counts[p.Sessions[i].At.Format("2006-01")]++
			}
			return counts
		},
		func(into, from map[string]int) map[string]int {
			for m, n := range from {
				into[m] += n
			}
			return into
		})
	months := make([]string, 0, len(counts))
	for m := range counts {
		months = append(months, m)
	}
	sort.Strings(months)
	out := make([]MonthCount, len(months))
	for i, m := range months {
		out[i] = MonthCount{Month: m, Sessions: counts[m]}
	}
	return out
}

// RootedExclusive is one Table 5 row: a root found exclusively on rooted
// handsets.
type RootedExclusive struct {
	Subject string
	Name    string // universe catalog name if known, else the subject CN
	Devices int
}

// Table5 detects certificates that appear exclusively on rooted handsets —
// the §6 methodology. AOSP members are excluded (every handset carries
// them); anything else present on ≥1 rooted and 0 non-rooted handsets is
// reported, sorted by device count.
func Table5(p *population.Population) []RootedExclusive {
	return defaultEngine.Table5(p)
}

// Table5 detects certificates that appear exclusively on rooted handsets.
func (e *Engine) Table5(p *population.Population) []RootedExclusive {
	u := p.Universe
	aosp44 := u.AOSP("4.4")
	type tally struct {
		rooted, nonRooted int
		subject           string
	}
	type acc struct {
		counts map[certid.Identity]*tally
		cn     map[certid.Identity]string
	}
	// The CN recorded for an identity is the one carried by the first
	// handset (in fleet order) that introduced it — an order-sensitive
	// merge that stays deterministic because shards fold ascending handset
	// ranges and merge in ascending shard order.
	a := accumulate(e, len(p.Handsets),
		func() acc {
			return acc{counts: map[certid.Identity]*tally{}, cn: map[certid.Identity]string{}}
		},
		func(a acc, start, end int) acc {
			for i := start; i < end; i++ {
				h := p.Handsets[i]
				for _, id := range h.Store.Identities() {
					if aosp44.ContainsIdentity(id) {
						continue
					}
					t := a.counts[id]
					if t == nil {
						t = &tally{subject: id.Subject}
						a.counts[id] = t
						if c := h.Store.Get(id); c != nil {
							a.cn[id] = c.Subject.CommonName
						}
					}
					if h.Rooted {
						t.rooted++
					} else {
						t.nonRooted++
					}
				}
			}
			return a
		},
		func(into, from acc) acc {
			for id, t := range from.counts {
				if have := into.counts[id]; have != nil {
					have.rooted += t.rooted
					have.nonRooted += t.nonRooted
					continue
				}
				into.counts[id] = t
				// The CN travels with the identity's creating shard only:
				// later shards never override an earlier first sighting.
				if name, ok := from.cn[id]; ok {
					into.cn[id] = name
				}
			}
			return into
		})
	counts, cn := a.counts, a.cn
	nameByID := map[certid.Identity]string{}
	for _, r := range u.Roots() {
		nameByID[corpus.IdentityOf(r.Issued.Cert)] = r.Name
	}
	var out []RootedExclusive
	for id, t := range counts {
		if t.rooted >= 1 && t.nonRooted == 0 {
			name := nameByID[id]
			if name == "" {
				name = cn[id]
			}
			if name == "" {
				name = id.Subject
			}
			out = append(out, RootedExclusive{Subject: id.Subject, Name: name, Devices: t.rooted})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MissingReport lists the handsets missing AOSP roots (§5's "only 5
// handsets").
type MissingReport struct {
	HandsetID int
	Model     string
	Version   string
	Missing   int
}

// MissingHandsets reports every handset whose store lacks AOSP roots.
func MissingHandsets(p *population.Population) []MissingReport {
	return defaultEngine.MissingHandsets(p)
}

// MissingHandsets reports every handset whose store lacks AOSP roots.
func (e *Engine) MissingHandsets(p *population.Population) []MissingReport {
	out := accumulate(e, len(p.Handsets),
		func() []MissingReport { return nil },
		func(out []MissingReport, start, end int) []MissingReport {
			for i := start; i < end; i++ {
				h := p.Handsets[i]
				if h.MissingCount > 0 {
					out = append(out, MissingReport{h.ID, h.Model, h.Version, h.MissingCount})
				}
			}
			return out
		},
		func(into, from []MissingReport) []MissingReport { return append(into, from...) })
	sort.Slice(out, func(i, j int) bool { return out[i].HandsetID < out[j].HandsetID })
	return out
}

// OverlapReport quantifies §2's AOSP/Mozilla overlap both ways.
type OverlapReport struct {
	Equivalent    int // subject+key equivalence (Table 4's 130)
	ByteIdentical int // byte-level identity (§2's 117)
}

// MozillaOverlap computes the AOSP 4.4 ∩ Mozilla overlap under both
// identity notions — the ablation behind choosing equivalence.
func MozillaOverlap(u *cauniverse.Universe) OverlapReport {
	return OverlapReport{
		Equivalent:    rootstore.Intersect("i", u.AOSP("4.4"), u.Mozilla()).Len(),
		ByteIdentical: rootstore.ByteIntersectCount(u.AOSP("4.4"), u.Mozilla()),
	}
}
