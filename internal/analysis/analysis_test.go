package analysis

import (
	"math"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

var (
	fixOnce sync.Once
	fixPop  *population.Population
	fixNot  *notary.Notary
	fixErr  error
)

// fixtures returns the paper-scale population and a fed Notary, cached for
// the whole test binary.
func fixtures(t *testing.T) (*population.Population, *notary.Notary) {
	t.Helper()
	fixOnce.Do(func() {
		fixPop, fixErr = population.Default()
		if fixErr != nil {
			return
		}
		var w *tlsnet.World
		w, fixErr = tlsnet.NewWorld(tlsnet.Config{Seed: 1, NumLeaves: 5000, Universe: fixPop.Universe})
		if fixErr != nil {
			return
		}
		fixNot = notary.New(certgen.Epoch)
		tlsnet.Feed(w, fixNot)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixPop, fixNot
}

func TestTable1(t *testing.T) {
	rows := Table1(cauniverse.Default())
	want := map[string]int{
		"AOSP 4.1": 139, "AOSP 4.2": 140, "AOSP 4.3": 146, "AOSP 4.4": 150,
		"iOS7": 227, "Mozilla": 153,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if want[r.Name] != r.Certs {
			t.Errorf("%s = %d, want %d", r.Name, r.Certs, want[r.Name])
		}
	}
}

func TestTable2(t *testing.T) {
	p, _ := fixtures(t)
	devices, manufacturers := Table2(p, 5)
	if len(devices) != 5 || len(manufacturers) != 5 {
		t.Fatal("Table2 should return top-5 rows")
	}
	if devices[0].Name != "SAMSUNG Galaxy SIV" || devices[0].Sessions != 2762 {
		t.Errorf("top device = %+v, want SAMSUNG Galaxy SIV 2762", devices[0])
	}
	if devices[1].Name != "SAMSUNG Galaxy SIII" || devices[1].Sessions != 2108 {
		t.Errorf("second device = %+v", devices[1])
	}
	wantMan := []CountRow{
		{"SAMSUNG", 7709}, {"LG", 2908}, {"ASUS", 1876}, {"HTC", 963}, {"MOTOROLA", 837},
	}
	for i, w := range wantMan {
		if manufacturers[i] != w {
			t.Errorf("manufacturer[%d] = %+v, want %+v", i, manufacturers[i], w)
		}
	}
}

func TestFigure1(t *testing.T) {
	p, _ := fixtures(t)
	pts := Figure1(p)
	if len(pts) == 0 {
		t.Fatal("no scatter points")
	}
	total := 0
	stockSessions := 0
	u := p.Universe
	for _, pt := range pts {
		total += pt.Sessions
		if pt.ExtraCerts == 0 && pt.AOSPCerts == u.AOSP(pt.Version).Len() {
			stockSessions += pt.Sessions
		}
		if pt.Sessions <= 0 {
			t.Fatalf("non-positive session count at %+v", pt)
		}
	}
	if total != p.TotalSessions() {
		t.Errorf("scatter covers %d sessions, want %d", total, p.TotalSessions())
	}
	// Most devices sit exactly on the AOSP line (§5: "most devices have the
	// same number of certificates ... as in their equivalent AOSP
	// distribution").
	if f := float64(stockSessions) / float64(total); f < 0.5 {
		t.Errorf("stock-store session share = %.3f, want > 0.5", f)
	}
}

func TestHeadlines(t *testing.T) {
	p, _ := fixtures(t)
	h := ComputeHeadlines(p)
	if h.TotalSessions != 15970 {
		t.Errorf("sessions = %d", h.TotalSessions)
	}
	if h.ExtendedFraction < 0.36 || h.ExtendedFraction > 0.43 {
		t.Errorf("extended = %.3f, want ≈0.39", h.ExtendedFraction)
	}
	if h.MissingHandsets != 5 {
		t.Errorf("missing handsets = %d, want 5", h.MissingHandsets)
	}
	if h.Over40Fraction41_42 <= 0.10 {
		t.Errorf("over-40 fraction = %.3f, want > 0.10", h.Over40Fraction41_42)
	}
	if h.RootedFraction < 0.21 || h.RootedFraction > 0.27 {
		t.Errorf("rooted = %.3f, want ≈0.24", h.RootedFraction)
	}
	if h.RootedExclusiveOfRoots < 0.04 || h.RootedExclusiveOfRoots > 0.08 {
		t.Errorf("rooted-exclusive = %.3f, want ≈0.06", h.RootedExclusiveOfRoots)
	}
	if h.InterceptedSessions != 1 {
		t.Errorf("intercepted sessions = %d, want 1", h.InterceptedSessions)
	}
	if len(MissingHandsets(p)) != h.MissingHandsets {
		t.Error("MissingHandsets disagrees with headline count")
	}
}

func TestTable5(t *testing.T) {
	p, _ := fixtures(t)
	rows := Table5(p)
	if len(rows) == 0 {
		t.Fatal("no rooted exclusives found")
	}
	if rows[0].Name != "CRAZY HOUSE" || rows[0].Devices != 70 {
		t.Errorf("top row = %+v, want CRAZY HOUSE on 70 devices", rows[0])
	}
	byName := map[string]int{}
	for _, r := range rows {
		byName[r.Name] = r.Devices
	}
	for _, name := range []string{"MIND OVERFLOW", "USER_X", "CDA/EMAILADDRESS", "CIRRUS, PRIVATE"} {
		if byName[name] != 1 {
			t.Errorf("%s devices = %d, want 1", name, byName[name])
		}
	}
}

func TestMozillaOverlap(t *testing.T) {
	rep := MozillaOverlap(cauniverse.Default())
	if rep.Equivalent != 130 {
		t.Errorf("equivalent overlap = %d, want 130", rep.Equivalent)
	}
	if rep.ByteIdentical != 117 {
		t.Errorf("byte overlap = %d, want 117", rep.ByteIdentical)
	}
}

func TestFigure2(t *testing.T) {
	p, n := fixtures(t)
	cells := Figure2(p, n, 10)
	if len(cells) == 0 {
		t.Fatal("no attribution cells")
	}
	// Samsung devices install the vendor base independent of operator:
	// AddTrust must show on several Samsung groups with substantial ratio.
	foundVendorBase := false
	foundCertiSignVerizon := false
	for _, c := range cells {
		if c.Ratio <= 0 || c.Ratio > 1 {
			t.Fatalf("ratio out of range: %+v", c)
		}
		if len(c.CertHash) != 8 {
			t.Fatalf("bad hash %q", c.CertHash)
		}
		if c.GroupKind == "manufacturer" && c.CertName == "AddTrust Class 1 CA Root" &&
			c.Group == "SAMSUNG 4.1" && c.Ratio > 0.3 {
			foundVendorBase = true
		}
		if c.GroupKind == "operator" && c.CertName == "Certisign AC1S" &&
			c.Group == "VERIZON(US)" {
			foundCertiSignVerizon = true
		}
	}
	if !foundVendorBase {
		t.Error("AddTrust should appear prominently on SAMSUNG 4.1")
	}
	if !foundCertiSignVerizon {
		t.Error("CertiSign should appear under VERIZON (Motorola 4.1 images)")
	}

	shares := ClassShares(cells)
	if shares[ClassNotRecorded] < 0.25 || shares[ClassNotRecorded] > 0.55 {
		t.Errorf("not-recorded share = %.3f, want ≈0.40 (§5)", shares[ClassNotRecorded])
	}
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("class shares sum to %v", sum)
	}
}

func TestPresenceClass(t *testing.T) {
	p, n := fixtures(t)
	u := p.Universe
	cases := map[string]Fig2Class{
		"AddTrust Class 1 CA Root": ClassMozillaAndIOS7,
		"DoD CLASS 3 Root CA":      ClassIOS7Only,
		"COMODO RSA CA":            ClassMozillaOnly,
		"CFCA Root CA":             ClassOnlyAndroid,
		"Motorola FOTA Root CA":    ClassNotRecorded,
		"CRAZY HOUSE":              ClassNotRecorded,
	}
	for name, want := range cases {
		cert := u.Root(name).Issued.Cert
		if got := PresenceClass(cert, p, n); got != want {
			t.Errorf("PresenceClass(%s) = %q, want %q", name, got, want)
		}
	}
}

func TestRoamingCandidates(t *testing.T) {
	p, _ := fixtures(t)
	cands := RoamingCandidates(p)
	if len(cands) == 0 {
		t.Fatal("paper-scale fleet should contain roaming candidates (§5.2)")
	}
	for _, c := range cands {
		if c.RootOwner == c.ServingOperator {
			t.Fatalf("candidate %d not foreign: %s on %s", c.HandsetID, c.RootName, c.ServingOperator)
		}
	}
	// The §5.2 signature case: Telefonica roots observed on Claro/Movistar
	// networks.
	foundTelefonica := false
	for _, c := range cands {
		if c.RootOwner == "TELEFONICA" && (c.ServingOperator == "CLARO" || c.ServingOperator == "MOVISTAR") {
			foundTelefonica = true
			break
		}
	}
	if !foundTelefonica {
		t.Error("expected Telefonica roots on Claro/Movistar networks")
	}
}

func TestFigure3AndTables(t *testing.T) {
	p, n := fixtures(t)
	u := p.Universe
	cats := Figure3Categories(u)
	if len(cats) != 8 {
		t.Fatalf("categories = %d, want 8", len(cats))
	}
	wantSizes := map[string]int{
		"Non AOSP and non Mozilla Android certs": 96,
		"Non AOSP root certs found on Mozilla's": 16,
		"AOSP 4.4 and Mozilla root certs":        130,
		"AOSP 4.1 certs":                         139,
		"AOSP 4.4 certs":                         150,
		"Mozilla root store certs":               153,
		"iOS 7 root store certs":                 227,
	}
	vals := ValidateCategories(n, cats)
	byName := map[string]CategoryValidation{}
	for _, v := range vals {
		byName[v.Name] = v
	}
	for name, size := range wantSizes {
		if byName[name].TotalRoots != size {
			t.Errorf("%s roots = %d, want %d", name, byName[name].TotalRoots, size)
		}
	}
	// Table 4's zero-validation percentages.
	zeroWant := map[string]float64{
		"Non AOSP and non Mozilla Android certs": 0.72,
		"Non AOSP root certs found on Mozilla's": 0.38,
		"AOSP 4.4 and Mozilla root certs":        0.15,
		"AOSP 4.1 certs":                         0.22,
		"AOSP 4.4 certs":                         0.23,
		"Aggregated Android root certs":          0.40,
		"Mozilla root store certs":               0.22,
		"iOS 7 root store certs":                 0.41,
	}
	for name, want := range zeroWant {
		got := byName[name].ZeroFraction
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s zero-validation = %.3f, want ≈%.2f (Table 4)", name, got, want)
		}
		if ecdfZero := byName[name].ECDF.ZeroFraction(); math.Abs(ecdfZero-got) > 1e-9 {
			t.Errorf("%s ECDF offset %.3f disagrees with report %.3f", name, ecdfZero, got)
		}
	}
	// The shared category validates the most per-root: its median count
	// dominates the extras'.
	shared := byName["AOSP 4.4 and Mozilla root certs"].ECDF
	extras := byName["Non AOSP and non Mozilla Android certs"].ECDF
	if shared.Quantile(0.5) <= extras.Quantile(0.5) {
		t.Error("shared roots should out-validate non-AOSP/non-Mozilla extras at the median")
	}

	// Table 3 structure.
	t3 := Table3(n, u)
	byName3 := map[string]CategoryValidation{}
	for _, v := range t3 {
		byName3[v.Name] = v
	}
	if byName3["AOSP 4.4"].Validated < byName3["AOSP 4.1"].Validated {
		t.Error("AOSP 4.4 should validate at least as many certs as 4.1 (Table 3)")
	}
	// All six stores stay within a few percent of each other (Table 3's
	// "few practical differences"); iOS7-vs-AOSP ordering is sample noise.
	ref := float64(byName3["AOSP 4.4"].Validated)
	for name, v := range byName3 {
		if r := float64(v.Validated) / ref; r < 0.95 || r > 1.05 {
			t.Errorf("%s validated ratio %.3f vs AOSP 4.4, want near 1", name, r)
		}
	}
}

func TestSessionsPerMonth(t *testing.T) {
	p, _ := fixtures(t)
	months := SessionsPerMonth(p)
	if len(months) != 6 {
		t.Fatalf("months = %d, want 6 (Nov 2013 – Apr 2014)", len(months))
	}
	if months[0].Month != "2013-11" || months[len(months)-1].Month != "2014-04" {
		t.Errorf("window = %s..%s", months[0].Month, months[len(months)-1].Month)
	}
	total := 0
	for _, m := range months {
		if m.Sessions <= 0 {
			t.Errorf("%s has %d sessions", m.Month, m.Sessions)
		}
		total += m.Sessions
	}
	if total != p.TotalSessions() {
		t.Errorf("month totals = %d, want %d", total, p.TotalSessions())
	}
}

func TestMarkerSize(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 63: 1, 64: 64, 255: 64, 256: 256, 511: 256, 512: 512, 1023: 512, 1024: 1024, 5000: 1024}
	for in, want := range cases {
		if got := MarkerSize(in); got != want {
			t.Errorf("MarkerSize(%d) = %d, want %d", in, got, want)
		}
	}
}
