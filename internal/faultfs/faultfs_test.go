package faultfs

import (
	"bytes"
	"errors"
	"io"
	"syscall"
	"testing"
)

// write is a test helper: append p to an open file.
func write(t *testing.T, f File, p []byte) {
	t.Helper()
	if _, err := f.Write(p); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func TestMemFSDurability(t *testing.T) {
	m := NewMem(1)
	if err := m.MkdirAll("data"); err != nil {
		t.Fatal(err)
	}

	// Synced content and a synced namespace survive a reboot.
	f, err := m.Create("data/a")
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}

	// Unsynced appends and an unsynced create may be lost.
	write(t, f, []byte("+volatile"))
	g, err := m.Create("data/b")
	if err != nil {
		t.Fatal(err)
	}
	write(t, g, []byte("never synced dir"))
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}

	m.Reboot()

	got := readAll(t, m, "data/a")
	if !bytes.HasPrefix(got, []byte("durable")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("durable+volatile") {
		t.Fatalf("phantom bytes appeared: %q", got)
	}
	// data/b was fsynced but its directory entry never was: the name is gone.
	if _, err := m.Open("data/b"); err == nil {
		t.Fatal("unsynced directory entry survived reboot")
	}
	names, err := m.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("ReadDir = %v, want [a]", names)
	}
}

func TestMemFSRenameDurability(t *testing.T) {
	m := NewMem(2)
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Create("d/x.tmp")
	write(t, f, []byte("payload"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("d/x.tmp", "d/x"); err != nil {
		t.Fatal(err)
	}

	// Without SyncDir the rename is volatile: reboot restores the old name.
	m.Reboot()
	if _, err := m.Open("d/x"); err == nil {
		t.Fatal("unsynced rename survived reboot")
	}
	if got := readAll(t, m, "d/x.tmp"); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("old name content = %q", got)
	}

	// With SyncDir it sticks.
	if err := m.Rename("d/x.tmp", "d/x"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Reboot()
	if got := readAll(t, m, "d/x"); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("renamed content = %q", got)
	}
	if _, err := m.Open("d/x.tmp"); err == nil {
		t.Fatal("old name survived synced rename")
	}
}

func TestMemFSCreateTruncateReverts(t *testing.T) {
	m := NewMem(3)
	f, _ := m.Create("a")
	write(t, f, []byte("original"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	// Truncating rewrite without sync: reboot restores the original.
	g, _ := m.Create("a")
	write(t, g, []byte("rewrite"))
	m.Reboot()
	if got := readAll(t, m, "a"); !bytes.Equal(got, []byte("original")) {
		t.Fatalf("content after reboot = %q, want original", got)
	}
}

func TestMemFSCrashAfter(t *testing.T) {
	m := NewMem(4)
	f, _ := m.Create("w")
	// Boundary ops: each Write and Sync counts. Crash after the 2nd.
	m.CrashAfter(2)
	write(t, f, []byte("one")) // boundary 1
	write(t, f, []byte("two")) // boundary 2: completes, then crash
	if _, err := f.Write([]byte("three")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write error = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync error = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("Crashed() = false after armed crash fired")
	}
	m.Reboot()
	if m.Crashed() {
		t.Fatal("Crashed() = true after reboot")
	}
}

// TestMemFSTornTailDeterministic pins the reboot torn-tail model: the same
// seed and history survive with byte-identical content, and different
// seeds are allowed to differ.
func TestMemFSTornTailDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		m := NewMem(seed)
		f, _ := m.Create("wal")
		write(t, f, []byte("committed"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := m.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		write(t, f, []byte("0123456789abcdef in flight"))
		m.Reboot()
		return readAll(t, m, "wal")
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different survivors: %q vs %q", a, b)
	}
	if !bytes.HasPrefix(a, []byte("committed")) {
		t.Fatalf("synced prefix lost: %q", a)
	}
}

func TestInjectorDeterministicLedger(t *testing.T) {
	run := func() string {
		in := New(Plan{Seed: 11, TornWriteProb: 0.3, SyncErrProb: 0.3, RenameErrProb: 0.5})
		fs := in.FS(NewMem(1), "run")
		f, err := fs.Create("j")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_, _ = f.Write([]byte("record"))
			_ = f.Sync()
		}
		for i := 0; i < 10; i++ {
			_ = fs.Rename("j", "j") // decision on the old path either way
		}
		return in.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different ledgers:\n%s\nvs\n%s", a, b)
	}
	in := New(Plan{Seed: 11, TornWriteProb: 0.3, SyncErrProb: 0.3, RenameErrProb: 0.5})
	_ = in // the run above must have fired something for the test to mean anything
	if !bytes.Contains([]byte(a), []byte("tornwrite")) && !bytes.Contains([]byte(a), []byte("syncerr")) {
		t.Fatalf("no faults fired at 30%% probabilities over 100 ops:\n%s", a)
	}
}

func TestInjectorFaultKinds(t *testing.T) {
	// Probability 1 plans make each fault deterministic on the first op.
	t.Run("nospace", func(t *testing.T) {
		in := New(Plan{Seed: 1, NoSpaceProb: 1})
		fs := in.FS(NewMem(1), "s")
		f, _ := fs.Create("x")
		n, err := f.Write([]byte("data"))
		if n != 0 || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write = (%d, %v), want (0, ENOSPC)", n, err)
		}
	})
	t.Run("tornwrite", func(t *testing.T) {
		in := New(Plan{Seed: 1, TornWriteProb: 1})
		mem := NewMem(1)
		fs := in.FS(mem, "s")
		f, _ := fs.Create("x")
		n, err := f.Write([]byte("0123456789"))
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("err = %v, want short write", err)
		}
		if n >= 10 {
			t.Fatalf("torn write persisted %d of 10 bytes", n)
		}
		if got := readAll(t, mem, "x"); len(got) != n {
			t.Fatalf("underlying file has %d bytes, short write reported %d", len(got), n)
		}
	})
	t.Run("syncerr", func(t *testing.T) {
		in := New(Plan{Seed: 1, SyncErrProb: 1})
		fs := in.FS(NewMem(1), "s")
		f, _ := fs.Create("x")
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync err = %v, want EIO", err)
		}
		if err := fs.SyncDir("."); !errors.Is(err, syscall.EIO) {
			t.Fatalf("syncdir err = %v, want EIO", err)
		}
	})
	t.Run("renameerr", func(t *testing.T) {
		in := New(Plan{Seed: 1, RenameErrProb: 1})
		mem := NewMem(1)
		fs := in.FS(mem, "s")
		f, _ := fs.Create("x")
		_ = f.Close()
		if err := fs.Rename("x", "y"); !errors.Is(err, syscall.EIO) {
			t.Fatalf("rename err = %v, want EIO", err)
		}
		if _, err := mem.Open("x"); err != nil {
			t.Fatalf("old name gone after failed rename: %v", err)
		}
	})
	t.Run("corruptread", func(t *testing.T) {
		in := New(Plan{Seed: 1, CorruptReadProb: 1})
		mem := NewMem(1)
		f, _ := mem.Create("x")
		write(t, f, []byte("abc"))
		fs := in.FS(mem, "s")
		got := readAll(t, fs, "x")
		if bytes.Equal(got, []byte("abc")) {
			t.Fatal("read-back corruption did not fire")
		}
		if got[0] != 'a'^0xFF {
			t.Fatalf("corruption flipped the wrong byte: %q", got)
		}
	})
}

func TestInjectorPanicsOnBadPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for write probabilities summing above 1")
		}
	}()
	New(Plan{TornWriteProb: 0.7, NoSpaceProb: 0.6})
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := Join(dir, "f")
	f, err := Disk.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, []byte("on disk"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Disk.Rename(p, Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if err := Disk.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	names, err := Disk.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "g" {
		t.Fatalf("ReadDir = %v", names)
	}
	if got := readAll(t, Disk, Join(dir, "g")); !bytes.Equal(got, []byte("on disk")) {
		t.Fatalf("content = %q", got)
	}
}
