// Package faultfs is a deterministic, seed-driven filesystem fault
// injector: the storage twin of internal/faultnet. It defines the narrow
// FS interface the notary's durability layer does all of its I/O through
// (create, write, sync, rename, remove, open, read-dir), a disk-backed
// implementation, an in-memory implementation with crash semantics
// (MemFS), and an Injector that wraps any FS in a seeded Plan of short and
// torn writes, fsync errors, rename failures, out-of-space errors, and
// read-back corruption.
//
// Determinism is the load-bearing property, exactly as in faultnet. The
// fault decision for the n-th faultable operation on a path is a pure
// function of (plan seed, scope, path, n): no shared PRNG stream is
// consumed across files, so goroutine interleaving cannot perturb
// outcomes, and a crashpoint sweep under the same seed produces the same
// per-path fault ledger on every run. All randomness flows through the
// seeded stats.Source (the detrand rule holds this package to it) and no
// wall-clock is read.
package faultfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"tangledmass/internal/stats"
)

// File is an open file handle. Writes are buffered by the OS until Sync;
// the durability layer must treat nothing as persisted before Sync
// returns nil.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage.
	Sync() error
}

// FS is the filesystem surface the notary durability layer is written
// against. Keeping it this narrow is what makes every I/O path drivable by
// the fault injector and the crash harness.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// name change requires a following SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// SyncDir flushes dir's entry table — the fsync that makes creates,
	// renames and removes in dir durable.
	SyncDir(dir string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// Disk is the real filesystem.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) Create(path string) (File, error) { return os.Create(path) }
func (diskFS) Open(path string) (File, error)   { return os.Open(path) }
func (diskFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (diskFS) Remove(path string) error  { return os.Remove(path) }
func (diskFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (diskFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; surface real errors
	// but tolerate EINVAL from filesystems that reject fsync on directories.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && errorsIsEINVAL(err) {
		return nil
	}
	return err
}

func errorsIsEINVAL(err error) bool {
	var errno syscall.Errno
	for {
		if e, ok := err.(syscall.Errno); ok {
			errno = e
			break
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
		if err == nil {
			return false
		}
	}
	return errno == syscall.EINVAL
}

func (diskFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Kind names one injectable filesystem fault.
type Kind string

const (
	// None means the operation proceeds untouched.
	None Kind = ""
	// TornWrite persists only a seed-determined prefix of the write and
	// fails with a short-write error — the partially applied write a crash
	// mid-write leaves behind.
	TornWrite Kind = "tornwrite"
	// NoSpace fails the write with ENOSPC before any byte is written.
	NoSpace Kind = "nospace"
	// SyncErr fails the fsync with EIO; the data's durability is unknown.
	SyncErr Kind = "syncerr"
	// RenameErr fails the rename with EIO, leaving the old name in place.
	RenameErr Kind = "renameerr"
	// CorruptRead flips the first byte returned by a read — latent media
	// corruption surfacing at read-back time.
	CorruptRead Kind = "corruptread"
)

// Plan is a seeded filesystem fault schedule. Probabilities are per
// operation of the matching category; the write-category probabilities
// must sum to at most 1.
type Plan struct {
	// Seed drives every fault decision.
	Seed int64

	// TornWriteProb and NoSpaceProb apply per Write call.
	TornWriteProb float64
	NoSpaceProb   float64
	// SyncErrProb applies per file Sync and per SyncDir call.
	SyncErrProb float64
	// RenameErrProb applies per Rename call.
	RenameErrProb float64
	// CorruptReadProb applies per Read call.
	CorruptReadProb float64
}

func (p Plan) prob(k Kind) float64 {
	switch k {
	case TornWrite:
		return p.TornWriteProb
	case NoSpace:
		return p.NoSpaceProb
	case SyncErr:
		return p.SyncErrProb
	case RenameErr:
		return p.RenameErrProb
	case CorruptRead:
		return p.CorruptReadProb
	}
	return 0
}

// Injector executes a Plan over wrapped filesystems and keeps the fault
// ledger. Safe for concurrent use.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	seq    map[string]uint64 // per-(scope|path) op counter
	ledger map[Kind]map[string]int
	ops    map[string]int // per-path op counter, faulted or not
	total  int
}

// New builds an injector for the plan. It panics on probabilities outside
// [0,1] or a write-category sum above 1 — a misconfigured fault run should
// fail loudly, not skew silently.
func New(plan Plan) *Injector {
	for _, k := range []Kind{TornWrite, NoSpace, SyncErr, RenameErr, CorruptRead} {
		pr := plan.prob(k)
		if pr < 0 || pr > 1 {
			panic(fmt.Sprintf("faultfs: probability for %q out of [0,1]: %v", k, pr))
		}
	}
	if plan.TornWriteProb+plan.NoSpaceProb > 1 {
		panic(fmt.Sprintf("faultfs: write-fault probabilities sum to %v > 1",
			plan.TornWriteProb+plan.NoSpaceProb))
	}
	return &Injector{
		plan:   plan,
		seq:    make(map[string]uint64),
		ledger: make(map[Kind]map[string]int),
		ops:    make(map[string]int),
	}
}

// draw returns the deterministic random source for the next operation on
// (scope, path) and advances the per-path ordinal. The stream position is
// a pure function of (seed, scope, path, ordinal), so file interleaving
// cannot perturb another path's decisions.
func (in *Injector) draw(scope, path string) *stats.Source {
	flow := scope + "|" + path
	in.mu.Lock()
	n := in.seq[flow]
	in.seq[flow] = n + 1
	in.ops[path]++
	in.mu.Unlock()

	h := fnv.New64a()
	// Hash writes never fail.
	_, _ = io.WriteString(h, fmt.Sprintf("%d|%s|%d", in.plan.Seed, flow, n))
	return stats.NewSource(int64(h.Sum64()))
}

// record notes one fired fault in the ledger.
func (in *Injector) record(kind Kind, path string) {
	in.mu.Lock()
	m := in.ledger[kind]
	if m == nil {
		m = make(map[string]int)
		in.ledger[kind] = m
	}
	m[path]++
	in.total++
	in.mu.Unlock()
}

// FS wraps next so every operation flows through the plan. The scope
// isolates the decision stream, exactly like faultnet scopes: give each
// run its own scope and outcomes replay byte-identically per seed.
func (in *Injector) FS(next FS, scope string) FS {
	return &faultFS{in: in, next: next, scope: scope}
}

type faultFS struct {
	in    *Injector
	next  FS
	scope string
}

func (f *faultFS) Create(path string) (File, error) {
	file, err := f.next.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: f.in, next: file, scope: f.scope, path: path}, nil
}

func (f *faultFS) Open(path string) (File, error) {
	file, err := f.next.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: f.in, next: file, scope: f.scope, path: path}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	src := f.in.draw(f.scope, oldpath)
	if src.Float64() < f.in.plan.RenameErrProb {
		f.in.record(RenameErr, oldpath)
		return fmt.Errorf("faultfs: injected rename failure %s -> %s: %w",
			oldpath, newpath, syscall.EIO)
	}
	return f.next.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(path string) error             { return f.next.Remove(path) }
func (f *faultFS) ReadDir(dir string) ([]string, error) { return f.next.ReadDir(dir) }
func (f *faultFS) MkdirAll(dir string) error            { return f.next.MkdirAll(dir) }

func (f *faultFS) SyncDir(dir string) error {
	src := f.in.draw(f.scope, dir)
	if src.Float64() < f.in.plan.SyncErrProb {
		f.in.record(SyncErr, dir)
		return fmt.Errorf("faultfs: injected fsync failure for directory %s: %w", dir, syscall.EIO)
	}
	return f.next.SyncDir(dir)
}

type faultFile struct {
	in    *Injector
	next  File
	scope string
	path  string
}

func (f *faultFile) Write(p []byte) (int, error) {
	src := f.in.draw(f.scope, f.path)
	x := src.Float64()
	switch {
	case x < f.in.plan.TornWriteProb:
		f.in.record(TornWrite, f.path)
		// Persist a strict prefix so the torn record is visible on replay;
		// the prefix length is drawn from the same per-op stream.
		keep := 0
		if len(p) > 0 {
			keep = src.Intn(len(p))
		}
		n, err := f.next.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultfs: injected torn write to %s (%d of %d bytes): %w",
			f.path, keep, len(p), io.ErrShortWrite)
	case x < f.in.plan.TornWriteProb+f.in.plan.NoSpaceProb:
		f.in.record(NoSpace, f.path)
		return 0, fmt.Errorf("faultfs: injected out-of-space writing %s: %w", f.path, syscall.ENOSPC)
	}
	return f.next.Write(p)
}

func (f *faultFile) Sync() error {
	src := f.in.draw(f.scope, f.path)
	if src.Float64() < f.in.plan.SyncErrProb {
		f.in.record(SyncErr, f.path)
		return fmt.Errorf("faultfs: injected fsync failure for %s: %w", f.path, syscall.EIO)
	}
	return f.next.Sync()
}

func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.next.Read(p)
	if n > 0 {
		src := f.in.draw(f.scope, f.path)
		if src.Float64() < f.in.plan.CorruptReadProb {
			f.in.record(CorruptRead, f.path)
			p[0] ^= 0xFF
		}
	}
	return n, err
}

func (f *faultFile) Close() error { return f.next.Close() }

// Join builds an FS path from components, normalized for both Disk and
// MemFS (forward-slash cleaned).
func Join(elem ...string) string { return filepath.ToSlash(filepath.Join(elem...)) }
