package faultfs

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one fault-ledger cell: how many times one fault kind fired
// against one path.
type Entry struct {
	Kind  Kind
	Path  string
	Count int
}

// Snapshot returns the ledger sorted by kind then path. Because every
// decision is a pure function of (seed, scope, path, ordinal), two runs
// with the same seed and workload produce byte-identical snapshots — the
// same central assertion the faultnet ledger carries for the network.
func (in *Injector) Snapshot() []Entry {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Entry
	for kind, paths := range in.ledger {
		for p, count := range paths {
			out = append(out, Entry{Kind: kind, Path: p, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Ops returns how many fault decisions ran per path, faulted or not,
// sorted by path — the denominator for the ledger's rates.
func (in *Injector) Ops() []Entry {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Entry, 0, len(in.ops))
	for p, count := range in.ops {
		out = append(out, Entry{Path: p, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// String renders the full ledger — per-path decision counts, then
// per-kind fault counts — in a stable textual form, for golden
// comparisons and logs.
func (in *Injector) String() string {
	var b strings.Builder
	b.WriteString("faultfs ledger\n")
	for _, e := range in.Ops() {
		b.WriteString(fmt.Sprintf("ops %-32s %d\n", e.Path, e.Count))
	}
	for _, e := range in.Snapshot() {
		b.WriteString(fmt.Sprintf("%-11s %-24s %d\n", e.Kind, e.Path, e.Count))
	}
	return b.String()
}
