package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"path"
	"sort"
	"sync"

	"tangledmass/internal/stats"
)

// ErrCrashed is the sentinel every MemFS operation returns once the
// simulated machine has crashed. The crash harness stops the workload on
// the first ErrCrashed, reboots the filesystem, and runs recovery.
var ErrCrashed = errors.New("faultfs: simulated crash")

// MemFS is an in-memory filesystem with explicit crash semantics, the
// substrate of the crashpoint recovery sweep. It models the page cache /
// stable storage split:
//
//   - Write appends to a file's volatile buffer; the bytes become durable
//     only when Sync returns nil.
//   - Create, Rename and Remove change the volatile namespace; the name
//     change becomes durable only when SyncDir on the parent returns nil.
//   - Reboot discards volatile state: files revert to their last synced
//     content plus a seed-determined prefix of any unsynced appended
//     suffix (the torn tail a real crash mid-writeback leaves), and the
//     namespace reverts to its last SyncDir'd form.
//
// CrashAfter(n) arms a crash at the n-th boundary operation (Write, file
// Sync, SyncDir, Rename — the operations after which the sweep injects a
// crash). The n-th operation itself completes; every operation after it
// fails with ErrCrashed until Reboot. The torn-tail length for each file
// is a pure function of (seed, path, crash ordinal), so a sweep under one
// seed replays byte-identically.
type MemFS struct {
	seed int64

	mu      sync.Mutex
	dirs    map[string]bool
	view    map[string]*memNode // volatile namespace
	dur     map[string]*memNode // namespace as of the last SyncDir
	ops     int                 // boundary operations performed
	crashAt int                 // 0 = disarmed
	crashed bool
	crashes int // reboot ordinal, feeds the torn-tail draw
}

// memNode is one file: volatile content plus the durable prefix fixed by
// the last successful Sync.
type memNode struct {
	buf []byte
	dur []byte
}

// NewMem returns an empty crashable filesystem. The seed drives only the
// torn-tail lengths applied at Reboot.
func NewMem(seed int64) *MemFS {
	return &MemFS{
		seed: seed,
		dirs: map[string]bool{".": true},
		view: make(map[string]*memNode),
		dur:  make(map[string]*memNode),
	}
}

// CrashAfter arms a crash at the n-th (1-based) boundary operation from
// now. Pass 0 to disarm.
func (m *MemFS) CrashAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashAt = n
}

// Boundaries returns how many boundary operations (Write, Sync, SyncDir,
// Rename) have run — the crashpoint count a profiling pass hands to the
// sweep.
func (m *MemFS) Boundaries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the filesystem is in the post-crash state.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// boundary counts one boundary op and fires the armed crash. Caller holds
// mu. The operation with ordinal crashAt completes before the crash takes
// effect, so "crash after the n-th boundary" is exact.
func (m *MemFS) boundary() {
	m.ops++
	if m.crashAt > 0 && m.ops >= m.crashAt {
		m.crashed = true
		m.crashAt = 0
	}
}

// Reboot models the machine coming back: the namespace reverts to the
// last SyncDir'd state and each surviving file keeps its synced prefix
// plus a deterministic share of its unsynced appended suffix. It clears
// the crashed state and disarms any pending crashpoint.
func (m *MemFS) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashes++
	m.view = make(map[string]*memNode, len(m.dur))
	for p, node := range m.dur {
		kept := append([]byte(nil), node.dur...)
		// Unsynced appended bytes may have partially reached the platter.
		// The surviving prefix length is a pure function of (seed, path,
		// reboot ordinal), so sweeps replay identically per seed.
		if len(node.buf) > len(node.dur) && bytes.Equal(node.buf[:len(node.dur)], node.dur) {
			suffix := node.buf[len(node.dur):]
			h := fnv.New64a()
			_, _ = io.WriteString(h, fmt.Sprintf("%d|%s|%d", m.seed, p, m.crashes))
			keep := stats.NewSource(int64(h.Sum64())).Intn(len(suffix) + 1)
			kept = append(kept, suffix[:keep]...)
		}
		fresh := &memNode{buf: kept, dur: append([]byte(nil), kept...)}
		m.view[p] = fresh
		m.dur[p] = fresh
	}
	m.crashed = false
	m.crashAt = 0
	m.ops = 0
}

func (m *MemFS) clean(p string) string { return path.Clean(p) }

func (m *MemFS) checkDir(p string) error {
	d := path.Dir(p)
	if !m.dirs[d] {
		return fmt.Errorf("faultfs: directory %s does not exist", d)
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	p = m.clean(p)
	if err := m.checkDir(p); err != nil {
		return nil, err
	}
	node := &memNode{}
	m.view[p] = node
	return &memFile{fs: m, node: node, path: p, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	p = m.clean(p)
	node, ok := m.view[p]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: file does not exist", p)
	}
	return &memFile{fs: m, node: node, path: p}, nil
}

// Rename implements FS. The volatile namespace changes immediately; the
// change is durable only after SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	oldpath, newpath = m.clean(oldpath), m.clean(newpath)
	node, ok := m.view[oldpath]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: file does not exist", oldpath)
	}
	if err := m.checkDir(newpath); err != nil {
		return err
	}
	m.view[newpath] = node
	if oldpath != newpath {
		delete(m.view, oldpath)
	}
	m.boundary()
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	p = m.clean(p)
	if _, ok := m.view[p]; !ok {
		return fmt.Errorf("faultfs: remove %s: file does not exist", p)
	}
	delete(m.view, p)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = m.clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("faultfs: readdir %s: directory does not exist", dir)
	}
	var names []string
	for p := range m.view {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: the volatile namespace for dir becomes durable.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	dir = m.clean(dir)
	if !m.dirs[dir] {
		return fmt.Errorf("faultfs: syncdir %s: directory does not exist", dir)
	}
	for p := range m.dur {
		if path.Dir(p) == dir {
			if _, ok := m.view[p]; !ok {
				delete(m.dur, p)
			}
		}
	}
	for p, node := range m.view {
		if path.Dir(p) == dir {
			m.dur[p] = node
		}
	}
	m.boundary()
	return nil
}

// MkdirAll implements FS. Directory creation is durable immediately — the
// durability layer creates its data directory once, outside the crash
// window the sweep studies.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	dir = m.clean(dir)
	for d := dir; ; d = path.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == "/" || path.Dir(d) == d {
			break
		}
	}
	return nil
}

type memFile struct {
	fs       *MemFS
	node     *memNode
	path     string
	writable bool
	off      int
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if f.closed {
		return 0, fmt.Errorf("faultfs: write to closed file %s", f.path)
	}
	if !f.writable {
		return 0, fmt.Errorf("faultfs: %s opened read-only", f.path)
	}
	f.node.buf = append(f.node.buf, p...)
	f.fs.boundary()
	return len(p), nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if f.closed {
		return 0, fmt.Errorf("faultfs: read from closed file %s", f.path)
	}
	if f.off >= len(f.node.buf) {
		return 0, io.EOF
	}
	n := copy(p, f.node.buf[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	if f.closed {
		return fmt.Errorf("faultfs: sync of closed file %s", f.path)
	}
	f.node.dur = append(f.node.dur[:0], f.node.buf...)
	f.fs.boundary()
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
