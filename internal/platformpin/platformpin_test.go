package platformpin

import (
	"crypto/x509"
	"errors"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/pinning"
	"tangledmass/internal/rootstore"
)

type fixture struct {
	u          *cauniverse.Universe
	googleRoot *certgen.Issued // the legitimate Google-issuing CA
	pins       []pinning.Pin
	genuine    []*x509.Certificate // legitimate gmail.com chain
	fraudulent []*x509.Certificate // gmail.com chain from a different in-store CA
	store      *rootstore.Store    // device store trusting BOTH roots
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func setup(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		u := cauniverse.Default()
		gen := u.Generator()
		issuing := u.IssuingRoots()
		googleRoot := issuing[0].Issued
		compromised := issuing[1].Issued

		genuineLeaf, err := gen.Leaf(googleRoot, "gmail.com", certgen.WithKeyName("pp-genuine"))
		if err != nil {
			fixErr = err
			return
		}
		fraudLeaf, err := gen.Leaf(compromised, "gmail.com", certgen.WithKeyName("pp-fraud"))
		if err != nil {
			fixErr = err
			return
		}
		store := u.AOSP("4.4")
		fix = &fixture{
			u:          u,
			googleRoot: googleRoot,
			pins:       []pinning.Pin{pinning.PinCertificate(googleRoot.Cert)},
			genuine:    []*x509.Certificate{genuineLeaf.Cert, googleRoot.Cert},
			fraudulent: []*x509.Certificate{fraudLeaf.Cert, compromised.Cert},
			store:      store,
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func TestDomainPinned(t *testing.T) {
	for host, want := range map[string]bool{
		"gmail.com":            true,
		"mail.google.com":      true,
		"www.google.co.uk":     true,
		"play.googleapis.com":  true,
		"www.youtube.com":      true,
		"www.facebook.com":     false,
		"notgoogle.com":        false,
		"google.com.evil.test": false,
	} {
		if got := DomainPinned(host); got != want {
			t.Errorf("DomainPinned(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestFraudulentGoogleCertDetectedOn44(t *testing.T) {
	f := setup(t)
	v44 := NewValidator("4.4", f.store, f.pins, certgen.Epoch)
	if !v44.PinningActive() {
		t.Fatal("4.4 should enforce platform pins")
	}
	// The genuine chain passes.
	if err := v44.Validate("gmail.com", f.genuine); err != nil {
		t.Errorf("genuine chain rejected: %v", err)
	}
	// The fraudulent chain anchors in the store — but 4.4 detects it.
	var fraud *ErrFraudulentGoogleCert
	err := v44.Validate("gmail.com", f.fraudulent)
	if !errors.As(err, &fraud) {
		t.Fatalf("err = %v, want ErrFraudulentGoogleCert", err)
	}
	if fraud.Host != "gmail.com" || fraud.Error() == "" {
		t.Errorf("fraud detail = %+v", fraud)
	}
}

func TestPre44AcceptsFraudulentCert(t *testing.T) {
	f := setup(t)
	// The §2 point: before 4.4 any in-store CA can mint Google certs.
	for _, version := range []string{"4.1", "4.2", "4.3"} {
		v := NewValidator(version, f.store, f.pins, certgen.Epoch)
		if v.PinningActive() {
			t.Errorf("%s should not enforce platform pins", version)
		}
		if err := v.Validate("gmail.com", f.fraudulent); err != nil {
			t.Errorf("%s should (problematically) accept the fraudulent chain: %v", version, err)
		}
	}
}

func TestNonGoogleDomainUnaffected(t *testing.T) {
	f := setup(t)
	v44 := NewValidator("4.4", f.store, f.pins, certgen.Epoch)
	// A chain from the "compromised" CA for a non-pinned domain still
	// passes — platform pinning covers Google properties only.
	gen := f.u.Generator()
	leaf, err := gen.Leaf(f.u.IssuingRoots()[1].Issued, "www.example.com",
		certgen.WithKeyName("pp-other"))
	if err != nil {
		t.Fatal(err)
	}
	chain := []*x509.Certificate{leaf.Cert, f.u.IssuingRoots()[1].Issued.Cert}
	if err := v44.Validate("www.example.com", chain); err != nil {
		t.Errorf("non-pinned domain rejected: %v", err)
	}
}

func TestUnanchoredChainStillFails(t *testing.T) {
	f := setup(t)
	v44 := NewValidator("4.4", f.store, f.pins, certgen.Epoch)
	// A chain from the interception CA (in no store) fails anchoring before
	// pinning even matters.
	gen := f.u.Generator()
	leaf, err := gen.Leaf(f.u.InterceptionRoot().Issued, "gmail.com",
		certgen.WithKeyName("pp-mitm"))
	if err != nil {
		t.Fatal(err)
	}
	chain := []*x509.Certificate{leaf.Cert, f.u.InterceptionRoot().Issued.Cert}
	err = v44.Validate("gmail.com", chain)
	if err == nil {
		t.Fatal("unanchored chain should fail")
	}
	var fraud *ErrFraudulentGoogleCert
	if errors.As(err, &fraud) {
		t.Error("unanchored chain should fail anchoring, not pinning")
	}
	if err := v44.Validate("gmail.com", nil); err == nil {
		t.Error("empty chain should fail")
	}
}
