// Package platformpin models the platform-level certificate pinning Android
// 4.4 introduced for Google properties (§2: "Android 4.4 detects and
// prevents the use of fraudulent Google certificates used in secure SSL/TLS
// communications"). Unlike app pinning (internal/pinning), this check lives
// in the platform's chain validator: on 4.4+, a chain for a pinned Google
// domain must contain one of the platform-known Google CA keys even when it
// otherwise anchors in the device store — which is exactly what defeats a
// compromised or rogue in-store CA minting gmail.com certificates.
package platformpin

import (
	"crypto/x509"
	"fmt"
	"strings"
	"time"

	"tangledmass/internal/chain"
	"tangledmass/internal/pinning"
	"tangledmass/internal/rootstore"
)

// PinnedSuffixes are the Google domain suffixes the 4.4 platform pins.
var PinnedSuffixes = []string{
	"google.com",
	"google.co.uk",
	"googleapis.com",
	"gmail.com",
	"android.com",
	"youtube.com",
}

// DomainPinned reports whether host falls under a pinned suffix.
func DomainPinned(host string) bool {
	for _, suffix := range PinnedSuffixes {
		if host == suffix || strings.HasSuffix(host, "."+suffix) {
			return true
		}
	}
	return false
}

// Validator is the platform chain validator with version-dependent Google
// pinning. Construct with NewValidator.
type Validator struct {
	// Version is the Android version ("4.1".."4.4"); pinning activates on
	// "4.4" and later.
	Version string
	// Store is the device's effective root store.
	Store *rootstore.Store
	// GooglePins are the platform-known Google CA pins.
	GooglePins []pinning.Pin
	// At pins the validation clock.
	At time.Time

	pinSet map[pinning.Pin]bool
}

// NewValidator builds a platform validator.
func NewValidator(version string, store *rootstore.Store, googlePins []pinning.Pin, at time.Time) *Validator {
	v := &Validator{Version: version, Store: store, GooglePins: googlePins, At: at,
		pinSet: make(map[pinning.Pin]bool, len(googlePins))}
	for _, p := range googlePins {
		v.pinSet[p] = true
	}
	return v
}

// PinningActive reports whether this platform version enforces Google pins.
func (v *Validator) PinningActive() bool {
	return v.Version >= "4.4"
}

// ErrFraudulentGoogleCert is returned when a chain for a pinned Google
// domain anchors in the store but matches no platform Google pin — the
// fraudulent-certificate case 4.4 detects.
type ErrFraudulentGoogleCert struct {
	Host   string
	Anchor string
}

// Error implements error.
func (e *ErrFraudulentGoogleCert) Error() string {
	return fmt.Sprintf("platformpin: chain for pinned domain %s anchors at %q but matches no Google pin", e.Host, e.Anchor)
}

// Validate checks a presented chain for host. It returns nil when the chain
// anchors in the device store and — on pin-enforcing versions, for pinned
// domains — contains a pinned Google key.
func (v *Validator) Validate(host string, presented []*x509.Certificate) error {
	if len(presented) == 0 {
		return fmt.Errorf("platformpin: empty chain for %s", host)
	}
	verifier := chain.NewVerifier(v.Store.Certificates(), presented[1:], v.At)
	if !verifier.Validates(presented[0]) {
		return fmt.Errorf("platformpin: chain for %s does not anchor in the device store", host)
	}
	if !v.PinningActive() || !DomainPinned(host) {
		return nil
	}
	for _, c := range presented {
		if v.pinSet[pinning.PinCertificate(c)] {
			return nil
		}
	}
	anchor := presented[len(presented)-1].Issuer.CommonName
	return &ErrFraudulentGoogleCert{Host: host, Anchor: anchor}
}
