package corpus

// Metric keys the intern table emits (see the registry in README.md).
// Package-prefixed compile-time constants, per the obskey lint rule.
const (
	// KeyInterned counts distinct certificates inserted into the table.
	KeyInterned = "corpus.interned"
	// KeyHits counts intern calls answered from the table without parsing.
	KeyHits = "corpus.hit"
	// KeyBytes accumulates the DER bytes owned by the table.
	KeyBytes = "corpus.bytes"
)
