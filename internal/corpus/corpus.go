// Package corpus is the content-addressed certificate intern table: every
// certificate the system touches — root-store members, observed leaves,
// snapshot entries, wire-decoded chains — is parsed exactly once, its
// identity and fingerprints computed exactly once, and referenced everywhere
// else by a compact Ref handle.
//
// The paper's analyses (§4–§6) pool, compare and validate the same small
// universe of certificates across 41+ root stores and millions of simulated
// sessions. Before the corpus each layer held its own *x509.Certificate
// copies and recomputed identities and fingerprints behind scattered memo
// maps; the corpus centralizes that work behind one table so repeated
// observations of the same certificate cost a map hit.
//
// # Ownership and immutability
//
// An Entry is immutable after creation: the corpus owns the DER copy, the
// parsed certificate, and the precomputed identity and fingerprints, and
// none of them ever change. Intern copies its input before parsing, so
// callers may reuse or overwrite their buffers (the tap's record
// reassembly buffer, for example) without corrupting the table. A Ref is a
// plain uint32, trivially comparable and hashable, and — because entries
// are immutable and refs are never reused — safe to use as a map key and
// to share across goroutines without synchronization.
//
// Ref values are process-local and assigned in interning order; two runs
// interning in different orders number the same certificates differently.
// Never order output by Ref — sort by fingerprint or identity, as the
// deterministic layers do.
package corpus

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/pem"
	"fmt"
	"sync"
	"sync/atomic"

	"tangledmass/internal/certid"
	"tangledmass/internal/obs"
)

// Ref is a dense handle to one interned certificate. The zero Ref is
// invalid: valid handles start at 1, so a Ref's presence can be tested
// against zero without an ok-bool.
type Ref uint32

// Digest is the SHA-256 of a certificate's DER encoding — the content
// address the table is keyed by.
type Digest [sha256.Size]byte

// Hex renders the digest as lowercase hex.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// XOR folds o into d in place. XOR of member digests is an incremental,
// order-independent set fingerprint: adding a member XORs its digest in,
// removing XORs it back out. rootstore and chain use it to derive pool
// keys without re-sorting and re-hashing whole membership lists.
func (d *Digest) XOR(o Digest) {
	for i := range d {
		d[i] ^= o[i]
	}
}

// Entry carries everything computed for one interned certificate. All
// fields are immutable after creation; callers must not modify DER, Cert,
// or any other field.
type Entry struct {
	// Ref is the entry's handle in its corpus.
	Ref Ref
	// DER is the corpus-owned copy of the certificate encoding.
	DER []byte
	// Cert is the parsed certificate.
	Cert *x509.Certificate
	// Identity is the paper's certificate identity (subject + key).
	Identity certid.Identity
	// SHA1, SHA256 and MD5 are hex fingerprints of the DER encoding.
	SHA1   string
	SHA256 string
	MD5    string
	// SubjectHash is the 32-bit OpenSSL-style subject hash used in Android
	// cacerts file names.
	SubjectHash uint32
	// Digest is the raw SHA-256 content address.
	Digest Digest
}

// Corpus is a concurrency-safe intern table. Construct with New, or use
// the process-wide Shared table. The zero value is not usable.
type Corpus struct {
	id      uint64
	mu      sync.RWMutex
	byHash  map[Digest]Ref
	entries atomic.Pointer[[]*Entry] // copy-on-write snapshot for lock-free reads
	byPtr   sync.Map                 // *x509.Certificate → Ref, the repeat-observation fast path

	nInterned atomic.Int64
	nHits     atomic.Int64
	nBytes    atomic.Int64

	interned *obs.Counter
	hits     *obs.Counter
	bytesC   *obs.Counter
}

// Option configures a Corpus at construction.
type Option func(*Corpus)

// WithObserver attaches the corpus.* counters (interned certificates,
// intern hits, interned DER bytes) to the given observer. Nil observers
// no-op.
func WithObserver(o *obs.Observer) Option {
	return func(c *Corpus) {
		c.interned = o.Counter(KeyInterned)
		c.hits = o.Counter(KeyHits)
		c.bytesC = o.Counter(KeyBytes)
	}
}

// nextID hands out process-unique corpus identifiers.
var nextID atomic.Uint64

// New returns an empty corpus.
func New(opts ...Option) *Corpus {
	c := &Corpus{id: nextID.Add(1), byHash: make(map[Digest]Ref)}
	empty := make([]*Entry, 0)
	c.entries.Store(&empty)
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// shared is the process-wide default table. Layers that are not handed an
// explicit corpus intern here, which is what makes one certificate parsed
// by the tap, the wire protocol and a snapshot load land on the same Entry.
var shared = New()

// Shared returns the process-wide corpus.
func Shared() *Corpus { return shared }

// Intern returns the handle for der, parsing and inserting it when the
// content is new. The input is copied before parsing; callers keep
// ownership of der.
func (c *Corpus) Intern(der []byte) (Ref, error) {
	sum := Digest(sha256.Sum256(der))
	c.mu.RLock()
	ref, ok := c.byHash[sum]
	c.mu.RUnlock()
	if ok {
		c.hit()
		return ref, nil
	}
	own := bytes.Clone(der)
	cert, err := x509.ParseCertificate(own)
	if err != nil {
		return 0, fmt.Errorf("corpus: parsing certificate: %w", err)
	}
	return c.insert(sum, own, cert), nil
}

// InternCert returns the handle for an already-parsed certificate. A
// repeated pointer is a lock-free map hit; new content adopts cert as the
// entry's parsed form (certificates are immutable values throughout the
// system), with the DER copied so the entry owns its encoding.
func (c *Corpus) InternCert(cert *x509.Certificate) Ref {
	if v, ok := c.byPtr.Load(cert); ok {
		c.hit()
		return v.(Ref)
	}
	sum := Digest(sha256.Sum256(cert.Raw))
	c.mu.RLock()
	ref, ok := c.byHash[sum]
	c.mu.RUnlock()
	if ok {
		c.hit()
	} else {
		ref = c.insert(sum, bytes.Clone(cert.Raw), cert)
	}
	c.byPtr.Store(cert, ref)
	return ref
}

// InternChain interns every certificate of a chain, preserving order.
func (c *Corpus) InternChain(chain []*x509.Certificate) []Ref {
	refs := make([]Ref, len(chain))
	for i, cert := range chain {
		refs[i] = c.InternCert(cert)
	}
	return refs
}

// InternAll interns a batch of encodings in one table transaction. Digests
// are checked against the table first, only genuinely new content is
// parsed, and every new entry lands in a single copy-on-write append — n
// new certificates cost one entries-slice copy instead of n. This is the
// bulk path for loaders that materialize a whole deduplicated DER table at
// once (dataset columnar files, notary snapshots).
func (c *Corpus) InternAll(ders [][]byte) ([]Ref, error) {
	refs := make([]Ref, len(ders))
	sums := make([]Digest, len(ders))
	var miss []int
	c.mu.RLock()
	for i, der := range ders {
		sums[i] = Digest(sha256.Sum256(der))
		if ref, ok := c.byHash[sums[i]]; ok {
			refs[i] = ref
		} else {
			miss = append(miss, i)
		}
	}
	c.mu.RUnlock()
	if hits := int64(len(ders) - len(miss)); hits > 0 {
		c.nHits.Add(hits)
		c.hits.Add(hits)
	}
	if len(miss) == 0 {
		return refs, nil
	}

	// Parse the misses outside the lock; duplicate digests within the batch
	// are resolved under the lock below (the first instance wins).
	owned := make([][]byte, len(miss))
	certs := make([]*x509.Certificate, len(miss))
	for k, i := range miss {
		owned[k] = bytes.Clone(ders[i])
		cert, err := x509.ParseCertificate(owned[k])
		if err != nil {
			return nil, fmt.Errorf("corpus: parsing certificate %d of batch: %w", i, err)
		}
		certs[k] = cert
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	entries := *c.entries.Load()
	next := make([]*Entry, len(entries), len(entries)+len(miss))
	copy(next, entries)
	for k, i := range miss {
		sum := sums[i]
		if ref, ok := c.byHash[sum]; ok {
			// Inserted by a concurrent intern or an earlier batch duplicate.
			refs[i] = ref
			c.hit()
			continue
		}
		cert := certs[k]
		e := &Entry{
			Ref:         Ref(len(next) + 1),
			DER:         owned[k],
			Cert:        cert,
			Identity:    certid.Identity{Subject: certid.SubjectString(cert), Key: certid.KeyIdentity(cert)},
			SHA1:        certid.SHA1Fingerprint(cert),
			SHA256:      sum.Hex(),
			MD5:         certid.MD5Fingerprint(cert),
			SubjectHash: certid.SubjectHash32(cert),
			Digest:      sum,
		}
		next = append(next, e)
		c.byHash[sum] = e.Ref
		refs[i] = e.Ref
		c.nInterned.Add(1)
		c.nBytes.Add(int64(len(e.DER)))
		c.interned.Inc()
		c.bytesC.Add(int64(len(e.DER)))
	}
	c.entries.Store(&next)
	return refs, nil
}

// insert adds a new entry under sum, resolving the insert race in favour
// of the first writer.
func (c *Corpus) insert(sum Digest, der []byte, cert *x509.Certificate) Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ref, ok := c.byHash[sum]; ok {
		c.hit()
		return ref
	}
	entries := *c.entries.Load()
	e := &Entry{
		Ref:         Ref(len(entries) + 1),
		DER:         der,
		Cert:        cert,
		Identity:    certid.Identity{Subject: certid.SubjectString(cert), Key: certid.KeyIdentity(cert)},
		SHA1:        certid.SHA1Fingerprint(cert),
		SHA256:      sum.Hex(),
		MD5:         certid.MD5Fingerprint(cert),
		SubjectHash: certid.SubjectHash32(cert),
		Digest:      sum,
	}
	next := make([]*Entry, len(entries)+1)
	copy(next, entries)
	next[len(entries)] = e
	c.entries.Store(&next)
	c.byHash[sum] = e.Ref
	c.nInterned.Add(1)
	c.nBytes.Add(int64(len(der)))
	c.interned.Inc()
	c.bytesC.Add(int64(len(der)))
	return e.Ref
}

func (c *Corpus) hit() {
	c.nHits.Add(1)
	c.hits.Inc()
}

// ID returns a process-unique identifier for this corpus. Refs are only
// meaningful relative to the corpus that issued them; cache keys that embed
// a Ref include the corpus ID so handles from different tables cannot
// collide.
func (c *Corpus) ID() uint64 { return c.id }

// Entry returns the entry for r, or nil for the zero Ref or a handle from
// another corpus.
func (c *Corpus) Entry(r Ref) *Entry {
	entries := *c.entries.Load()
	if r == 0 || int(r) > len(entries) {
		return nil
	}
	return entries[r-1]
}

// Cert returns the parsed certificate for r, or nil.
func (c *Corpus) Cert(r Ref) *x509.Certificate {
	if e := c.Entry(r); e != nil {
		return e.Cert
	}
	return nil
}

// Identity returns the precomputed identity for r (zero for invalid refs).
func (c *Corpus) Identity(r Ref) certid.Identity {
	if e := c.Entry(r); e != nil {
		return e.Identity
	}
	return certid.Identity{}
}

// SHA1 returns the precomputed hex SHA-1 fingerprint for r ("" for
// invalid refs).
func (c *Corpus) SHA1(r Ref) string {
	if e := c.Entry(r); e != nil {
		return e.SHA1
	}
	return ""
}

// DER returns the corpus-owned encoding for r (nil for invalid refs).
// Callers must not modify it.
func (c *Corpus) DER(r Ref) []byte {
	if e := c.Entry(r); e != nil {
		return e.DER
	}
	return nil
}

// Certs materializes the parsed certificates for refs, preserving order.
func (c *Corpus) Certs(refs []Ref) []*x509.Certificate {
	out := make([]*x509.Certificate, len(refs))
	for i, r := range refs {
		out[i] = c.Cert(r)
	}
	return out
}

// Len returns the number of distinct certificates interned.
func (c *Corpus) Len() int { return len(*c.entries.Load()) }

// Stats is a point-in-time interning tally.
type Stats struct {
	// Interned is the number of distinct certificates in the table.
	Interned int64
	// Hits counts intern calls answered without parsing (pointer or
	// content match).
	Hits int64
	// Bytes is the total DER bytes owned by the table.
	Bytes int64
}

// Stats returns the cumulative tallies.
func (c *Corpus) Stats() Stats {
	return Stats{Interned: c.nInterned.Load(), Hits: c.nHits.Load(), Bytes: c.nBytes.Load()}
}

const pemCertType = "CERTIFICATE"

// ParsePEM interns every CERTIFICATE block in data, in order. Non-certificate
// blocks are skipped; a block that fails to parse is an error.
func (c *Corpus) ParsePEM(data []byte) ([]Ref, error) {
	var refs []Ref
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		if block.Type != pemCertType {
			continue
		}
		ref, err := c.Intern(block.Bytes)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// Intern interns der into the shared corpus.
func Intern(der []byte) (Ref, error) { return shared.Intern(der) }

// InternCert interns an already-parsed certificate into the shared corpus.
func InternCert(cert *x509.Certificate) Ref { return shared.InternCert(cert) }

// ParsePEM interns a PEM bundle into the shared corpus.
func ParsePEM(data []byte) ([]Ref, error) { return shared.ParsePEM(data) }

// CertOf returns the shared-corpus certificate for r.
func CertOf(r Ref) *x509.Certificate { return shared.Cert(r) }

// IdentityOf returns cert's identity through the shared corpus — the
// memoized replacement for certid.IdentityOf on hot paths: the identity is
// computed once when the certificate is first interned and every later
// call is a map hit.
func IdentityOf(cert *x509.Certificate) certid.Identity {
	return shared.Identity(shared.InternCert(cert))
}

// SHA1Of returns cert's hex SHA-1 fingerprint through the shared corpus.
func SHA1Of(cert *x509.Certificate) string {
	return shared.SHA1(shared.InternCert(cert))
}

// SHA256Of returns cert's hex SHA-256 fingerprint through the shared corpus.
func SHA256Of(cert *x509.Certificate) string {
	if e := shared.Entry(shared.InternCert(cert)); e != nil {
		return e.SHA256
	}
	return ""
}

// Equivalent reports whether two certificates are equivalent in the
// paper's sense (same subject and key), answered from interned identities.
func Equivalent(a, b *x509.Certificate) bool {
	return IdentityOf(a) == IdentityOf(b)
}
