package corpus_test

import (
	"bytes"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"sync"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/obs"
)

// genCerts issues n distinct certificates from a fresh deterministic
// generator.
func genCerts(t *testing.T, seed int64, n int) []*x509.Certificate {
	t.Helper()
	g := certgen.NewGenerator(seed)
	root, err := g.SelfSignedCA("Corpus Test Root")
	if err != nil {
		t.Fatal(err)
	}
	out := []*x509.Certificate{root.Cert}
	for i := 1; i < n; i++ {
		leaf, err := g.Leaf(root, fmt.Sprintf("host-%d.example.com", i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, leaf.Cert)
	}
	return out
}

func TestInternDeduplicatesByContent(t *testing.T) {
	c := corpus.New()
	certs := genCerts(t, 100, 3)

	r1, err := c.Intern(certs[0].Raw)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == 0 {
		t.Fatal("valid intern returned the zero Ref")
	}
	r2, err := c.Intern(certs[0].Raw)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same DER interned to different refs: %d, %d", r1, r2)
	}
	r3, err := c.Intern(certs[1].Raw)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("distinct DER interned to the same ref")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Interned != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 interned / 1 hit", st)
	}
	if st.Bytes != int64(len(certs[0].Raw)+len(certs[1].Raw)) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestInternCopiesItsInput(t *testing.T) {
	c := corpus.New()
	cert := genCerts(t, 101, 1)[0]
	buf := bytes.Clone(cert.Raw)
	ref, err := c.Intern(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0 // the tap reuses its reassembly buffer exactly like this
	}
	if !bytes.Equal(c.DER(ref), cert.Raw) {
		t.Fatal("corpus entry aliases the caller's buffer")
	}
	if got := c.Cert(ref); !bytes.Equal(got.Raw, cert.Raw) {
		t.Fatal("parsed certificate aliases the caller's buffer")
	}
}

func TestInternBadDERFails(t *testing.T) {
	c := corpus.New()
	if _, err := c.Intern([]byte("not a certificate")); err == nil {
		t.Fatal("garbage DER interned without error")
	}
	if c.Len() != 0 {
		t.Fatal("failed intern left an entry behind")
	}
}

func TestEntryPrecomputedFields(t *testing.T) {
	c := corpus.New()
	cert := genCerts(t, 102, 1)[0]
	ref, err := c.Intern(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	e := c.Entry(ref)
	if e == nil || e.Ref != ref {
		t.Fatalf("entry = %+v", e)
	}
	if e.Identity != certid.IdentityOf(cert) {
		t.Error("precomputed identity disagrees with certid.IdentityOf")
	}
	if e.SHA1 != certid.SHA1Fingerprint(cert) {
		t.Error("precomputed SHA-1 disagrees with certid")
	}
	if e.SHA256 != certid.SHA256Fingerprint(cert) {
		t.Error("precomputed SHA-256 disagrees with certid")
	}
	if e.MD5 != certid.MD5Fingerprint(cert) {
		t.Error("precomputed MD5 disagrees with certid")
	}
	if e.SubjectHash != certid.SubjectHash32(cert) {
		t.Error("precomputed subject hash disagrees with certid")
	}
	if e.Digest.Hex() != e.SHA256 {
		t.Error("digest and SHA-256 fingerprint disagree")
	}
}

func TestInternCertPointerFastPath(t *testing.T) {
	c := corpus.New()
	cert := genCerts(t, 103, 1)[0]
	r1 := c.InternCert(cert)
	before := c.Stats()
	r2 := c.InternCert(cert)
	if r1 != r2 {
		t.Fatalf("refs differ: %d, %d", r1, r2)
	}
	after := c.Stats()
	if after.Hits != before.Hits+1 || after.Interned != before.Interned {
		t.Fatalf("repeat pointer intern not a hit: %+v -> %+v", before, after)
	}
	if c.Cert(r1) != cert {
		t.Fatal("first-interned certificate was not adopted as canonical")
	}
}

func TestInvalidRefs(t *testing.T) {
	c := corpus.New()
	if c.Entry(0) != nil || c.Cert(0) != nil || c.DER(0) != nil {
		t.Fatal("zero ref resolved")
	}
	if c.Entry(99) != nil {
		t.Fatal("out-of-range ref resolved")
	}
	if c.SHA1(99) != "" || (c.Identity(99) != certid.Identity{}) {
		t.Fatal("out-of-range ref produced non-zero derived values")
	}
}

// TestConcurrentIntern hammers one corpus from many goroutines interning a
// mix of identical and distinct DER (and repeated cert pointers). Run under
// -race this pins the locking discipline; the assertions pin ref stability:
// every goroutine must agree on the ref for a given content.
func TestConcurrentIntern(t *testing.T) {
	const workers = 16
	c := corpus.New()
	certs := genCerts(t, 104, 8)
	refs := make([][]corpus.Ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]corpus.Ref, 0, len(certs)*3)
			for round := 0; round < 3; round++ {
				for i, cert := range certs {
					var ref corpus.Ref
					if (w+round+i)%2 == 0 {
						var err error
						ref, err = c.Intern(cert.Raw)
						if err != nil {
							t.Error(err)
							return
						}
					} else {
						ref = c.InternCert(cert)
					}
					out = append(out, ref)
				}
			}
			refs[w] = out
		}(w)
	}
	wg.Wait()

	if c.Len() != len(certs) {
		t.Fatalf("len = %d, want %d", c.Len(), len(certs))
	}
	for w := 1; w < workers; w++ {
		for i, ref := range refs[w] {
			if ref != refs[0][i] {
				t.Fatalf("worker %d saw ref %d for item %d, worker 0 saw %d", w, ref, i, refs[0][i])
			}
		}
	}
	// The same content must keep its ref on every later lookup.
	for _, cert := range certs {
		r1 := c.InternCert(cert)
		r2, err := c.Intern(cert.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("ref drifted: %d vs %d", r1, r2)
		}
	}
}

func TestObserverCounters(t *testing.T) {
	o := obs.New()
	c := corpus.New(corpus.WithObserver(o))
	cert := genCerts(t, 105, 1)[0]
	if _, err := c.Intern(cert.Raw); err != nil {
		t.Fatal(err)
	}
	c.InternCert(cert)
	snap := o.Snapshot()
	if snap.Counters[corpus.KeyInterned] != 1 {
		t.Errorf("%s = %d, want 1", corpus.KeyInterned, snap.Counters[corpus.KeyInterned])
	}
	if snap.Counters[corpus.KeyHits] != 1 {
		t.Errorf("%s = %d, want 1", corpus.KeyHits, snap.Counters[corpus.KeyHits])
	}
	if snap.Counters[corpus.KeyBytes] != int64(len(cert.Raw)) {
		t.Errorf("%s = %d, want %d", corpus.KeyBytes, snap.Counters[corpus.KeyBytes], len(cert.Raw))
	}
}

func TestDigestXORRoundTrip(t *testing.T) {
	c := corpus.New()
	certs := genCerts(t, 106, 3)
	var acc corpus.Digest
	zero := acc
	var digests []corpus.Digest
	for _, cert := range certs {
		ref, err := c.Intern(cert.Raw)
		if err != nil {
			t.Fatal(err)
		}
		d := c.Entry(ref).Digest
		digests = append(digests, d)
		acc.XOR(d)
	}
	// XOR is order-independent: folding in reverse yields the same value.
	var rev corpus.Digest
	for i := len(digests) - 1; i >= 0; i-- {
		rev.XOR(digests[i])
	}
	if acc != rev {
		t.Fatal("XOR accumulator depends on order")
	}
	// Removing every member returns to zero.
	for _, d := range digests {
		acc.XOR(d)
	}
	if acc != zero {
		t.Fatal("XOR add/remove did not cancel")
	}
}

func TestParsePEMSkipsNonCertBlocks(t *testing.T) {
	c := corpus.New()
	certs := genCerts(t, 107, 2)
	var bundle []byte
	bundle = append(bundle, pemEncode("CERTIFICATE", certs[0].Raw)...)
	bundle = append(bundle, pemEncode("RSA PRIVATE KEY", []byte("not a cert"))...)
	bundle = append(bundle, pemEncode("CERTIFICATE", certs[1].Raw)...)
	refs, err := c.ParsePEM(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("refs = %d, want 2", len(refs))
	}
	for i, ref := range refs {
		if !bytes.Equal(c.DER(ref), certs[i].Raw) {
			t.Fatalf("ref %d does not match input order", i)
		}
	}
	if _, err := c.ParsePEM(pemEncode("CERTIFICATE", []byte("garbage"))); err == nil {
		t.Fatal("garbage CERTIFICATE block parsed")
	}
}

func TestSharedHelpers(t *testing.T) {
	certs := genCerts(t, 108, 2)
	a, b := certs[0], certs[1]
	if !corpus.Equivalent(a, a) {
		t.Fatal("certificate not equivalent to itself")
	}
	if corpus.Equivalent(a, b) {
		t.Fatal("distinct-identity certificates reported equivalent")
	}
	if corpus.IdentityOf(a) != certid.IdentityOf(a) {
		t.Fatal("corpus.IdentityOf disagrees with certid.IdentityOf")
	}
	if corpus.SHA1Of(a) != certid.SHA1Fingerprint(a) {
		t.Fatal("corpus.SHA1Of disagrees with certid")
	}
	if corpus.SHA256Of(a) != certid.SHA256Fingerprint(a) {
		t.Fatal("corpus.SHA256Of disagrees with certid")
	}
	if corpus.CertOf(corpus.InternCert(a)) == nil {
		t.Fatal("shared intern round trip failed")
	}
}

func pemEncode(typ string, der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: typ, Bytes: der})
}

func TestInternAll(t *testing.T) {
	c := corpus.New()
	certs := genCerts(t, 109, 3)
	pre, err := c.Intern(certs[0].Raw)
	if err != nil {
		t.Fatal(err)
	}

	// Batch mixing an already-interned cert, a new cert, and an in-batch
	// duplicate: refs come back in input order, deduplicated.
	refs, err := c.InternAll([][]byte{certs[0].Raw, certs[1].Raw, certs[1].Raw, certs[2].Raw})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Fatalf("refs = %d, want 4", len(refs))
	}
	if refs[0] != pre {
		t.Fatal("already-interned DER got a fresh ref from InternAll")
	}
	if refs[1] != refs[2] {
		t.Fatal("in-batch duplicate DER interned to different refs")
	}
	for i, want := range []int{0, 1, 1, 2} {
		if !bytes.Equal(c.DER(refs[i]), certs[want].Raw) {
			t.Fatalf("ref %d does not round-trip to its input DER", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}

	// A second pass is all hits and adds nothing.
	again, err := c.InternAll([][]byte{certs[2].Raw, certs[0].Raw})
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != refs[3] || again[1] != pre {
		t.Fatal("second InternAll pass returned different refs")
	}
	if c.Len() != 3 {
		t.Fatalf("len grew to %d on an all-hit batch", c.Len())
	}

	// A bad DER anywhere fails the whole batch without corrupting state.
	if _, err := c.InternAll([][]byte{certs[0].Raw, []byte("junk")}); err == nil {
		t.Fatal("garbage DER in a batch interned without error")
	}
	if c.Len() != 3 {
		t.Fatalf("failed batch left entries behind: len = %d", c.Len())
	}

	empty, err := c.InternAll(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("InternAll(nil) = %v, %v", empty, err)
	}
}
