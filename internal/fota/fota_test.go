package fota

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
)

// env builds the Motorola FOTA world: the universe's FOTA root, a service
// certificate under it, and a signed manifest server.
func env(t *testing.T) (*cauniverse.Universe, *Signer, *Server, Manifest) {
	t.Helper()
	u := cauniverse.Default()
	fotaRoot := u.Root("Motorola FOTA Root CA")
	svcCert, err := u.Generator().Leaf(fotaRoot.Issued, "fota.vendor.example",
		certgen.WithKeyName("fota-service"))
	if err != nil {
		t.Fatal(err)
	}
	signer := &Signer{Cert: svcCert}
	payload := sha256.Sum256([]byte("firmware image v4.4.2"))
	manifest := Manifest{
		Model:         "Droid Razr",
		Version:       "4.4.2",
		PayloadSHA256: hex.EncodeToString(payload[:]),
	}
	srv, err := NewServer(signer, manifest)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return u, signer, srv, manifest
}

func TestMotorolaDeviceFetchesUpdate(t *testing.T) {
	u, _, srv, want := env(t)
	fota := u.Root("Motorola FOTA Root CA").Issued.Cert
	// The Motorola firmware image carries the FOTA root (§5.1).
	moto := device.New(device.Profile{Model: "Droid Razr", Manufacturer: "MOTOROLA", Version: "4.4"},
		u.AOSP("4.4"), []*x509.Certificate{fota})

	up := &Updater{Store: moto.EffectiveStore(), FOTARoot: fota, At: certgen.Epoch}
	got, err := up.Fetch(srv.Addr(), "fota.vendor.example")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.PayloadSHA256 != want.PayloadSHA256 {
		t.Errorf("manifest = %+v, want %+v", got, want)
	}
	if len(got.Signature) == 0 {
		t.Error("manifest should carry a signature")
	}
}

func TestStockDeviceRejectsChannel(t *testing.T) {
	u, _, srv, _ := env(t)
	fota := u.Root("Motorola FOTA Root CA").Issued.Cert
	// A stock AOSP device lacks the FOTA root: channel untrusted.
	stock := device.New(device.Profile{Model: "Nexus 5", Manufacturer: "LG", Version: "4.4"},
		u.AOSP("4.4"), nil)
	up := &Updater{Store: stock.EffectiveStore(), FOTARoot: fota, At: certgen.Epoch}
	_, err := up.Fetch(srv.Addr(), "fota.vendor.example")
	if !errors.Is(err, ErrChannelUntrusted) {
		t.Errorf("err = %v, want ErrChannelUntrusted", err)
	}
}

func TestTamperedManifestRejected(t *testing.T) {
	u, signer, _, manifest := env(t)
	signed, err := signer.Sign(manifest)
	if err != nil {
		t.Fatal(err)
	}
	up := &Updater{
		Store:    u.AOSP("4.4"),
		FOTARoot: u.Root("Motorola FOTA Root CA").Issued.Cert,
		At:       certgen.Epoch,
	}
	// Valid signature verifies.
	if err := up.VerifyManifest(signer.Cert.Cert, signed); err != nil {
		t.Fatalf("genuine manifest rejected: %v", err)
	}
	// Any field change invalidates it.
	tampered := signed
	tampered.Version = "4.4.2-evil"
	if err := up.VerifyManifest(signer.Cert.Cert, tampered); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered manifest err = %v, want ErrBadSignature", err)
	}
	tampered2 := signed
	tampered2.PayloadSHA256 = "00" + signed.PayloadSHA256[2:]
	if err := up.VerifyManifest(signer.Cert.Cert, tampered2); !errors.Is(err, ErrBadSignature) {
		t.Errorf("payload-swapped manifest err = %v, want ErrBadSignature", err)
	}
}

func TestWrongSignerRejected(t *testing.T) {
	u, _, _, manifest := env(t)
	// A manifest signed by an unrelated key (e.g. the interception CA).
	evil := &Signer{Cert: u.InterceptionRoot().Issued}
	signed, err := evil.Sign(manifest)
	if err != nil {
		t.Fatal(err)
	}
	fotaService, err := u.Generator().Leaf(u.Root("Motorola FOTA Root CA").Issued,
		"fota.vendor.example", certgen.WithKeyName("fota-service"))
	if err != nil {
		t.Fatal(err)
	}
	up := &Updater{
		Store:    u.AOSP("4.4"),
		FOTARoot: u.Root("Motorola FOTA Root CA").Issued.Cert,
		At:       certgen.Epoch,
	}
	if err := up.VerifyManifest(fotaService.Cert, signed); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong-signer manifest err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyChannelDirect(t *testing.T) {
	u, signer, _, _ := env(t)
	fota := u.Root("Motorola FOTA Root CA").Issued.Cert
	store := u.AOSP("4.4").Clone("moto")
	store.Add(fota)
	up := &Updater{Store: store, FOTARoot: fota, At: certgen.Epoch}
	if err := up.VerifyChannel(nil); !errors.Is(err, ErrChannelUntrusted) {
		t.Error("empty chain should be untrusted")
	}
	if err := up.VerifyChannel([]*x509.Certificate{signer.Cert.Cert}); err != nil {
		t.Errorf("FOTA-issued service cert should verify: %v", err)
	}
	// A web cert anchored in the store but NOT under the FOTA root is
	// refused — channel pinning to the special-purpose root.
	webRoot := u.IssuingRoots()[0]
	webLeaf, err := u.Generator().Leaf(webRoot.Issued, "fota.vendor.example",
		certgen.WithKeyName("fake-fota"))
	if err != nil {
		t.Fatal(err)
	}
	if err := up.VerifyChannel([]*x509.Certificate{webLeaf.Cert}); !errors.Is(err, ErrChannelUntrusted) {
		t.Errorf("web-anchored channel err = %v, want ErrChannelUntrusted", err)
	}
}
