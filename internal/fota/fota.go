// Package fota simulates the firmware-over-the-air update channel whose
// root certificates the paper finds in Motorola firmware (§5.1: "The FOTA
// and SUPL certificates secure firmware updates and location-sensor
// assistance"). These roots never appear in web traffic — they are the
// archetype of the Notary's "no record" class — yet they matter: a
// compromised update channel is a full-device compromise.
//
// The subsystem has two halves:
//
//   - an update server: a TLS service (authenticated by a FOTA-root-issued
//     certificate) that serves firmware manifests, each carrying a detached
//     signature by the FOTA signing key;
//   - a device-side updater that (1) requires the TLS channel to chain to
//     the FOTA root in its own store and (2) verifies the manifest
//     signature — the two independent uses of the same special-purpose
//     trust anchor.
package fota

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/chain"
	"tangledmass/internal/rootstore"
)

// Manifest describes one firmware image.
type Manifest struct {
	Model   string `json:"model"`
	Version string `json:"version"`
	// PayloadSHA256 is the firmware image digest (hex).
	PayloadSHA256 string `json:"payload_sha256"`
	// Signature is an ASN.1 ECDSA signature by the FOTA signer over the
	// canonical JSON of the manifest with Signature empty.
	Signature []byte `json:"signature"`
}

// signingBytes returns the bytes the signature covers.
func (m Manifest) signingBytes() ([]byte, error) {
	m.Signature = nil
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("fota: marshaling manifest: %w", err)
	}
	sum := sha256.Sum256(b)
	return sum[:], nil
}

// Signer issues signed manifests. In production this is the vendor's
// release infrastructure holding the FOTA signing certificate.
type Signer struct {
	// Cert chains to the FOTA root; Key signs manifests.
	Cert *certgen.Issued
}

// Sign completes a manifest with its signature.
func (s *Signer) Sign(m Manifest) (Manifest, error) {
	digest, err := m.signingBytes()
	if err != nil {
		return Manifest{}, err
	}
	key, ok := s.Cert.Key.(*ecdsa.PrivateKey)
	if !ok {
		return Manifest{}, fmt.Errorf("fota: signer key is %T, want ECDSA", s.Cert.Key)
	}
	sig, err := ecdsa.SignASN1(rand.Reader, key, digest)
	if err != nil {
		return Manifest{}, fmt.Errorf("fota: signing manifest: %w", err)
	}
	m.Signature = sig
	return m, nil
}

// Errors the updater distinguishes.
var (
	// ErrChannelUntrusted means the TLS server certificate does not chain
	// to the FOTA root in the device store — a stock device, or a MITM.
	ErrChannelUntrusted = errors.New("fota: update channel does not chain to a trusted FOTA root")
	// ErrBadSignature means the manifest signature failed verification.
	ErrBadSignature = errors.New("fota: manifest signature invalid")
)

// Updater is the device-side client.
type Updater struct {
	// Store is the device's effective root store.
	Store *rootstore.Store
	// FOTASubject pins which root secures the update channel (by subject
	// common name); the updater refuses channels anchored elsewhere even if
	// the device store would trust them for the web.
	FOTARoot *x509.Certificate
	// At pins the validation clock.
	At time.Time
}

// VerifyChannel checks a presented TLS chain: it must validate against the
// device store AND terminate at the FOTA root specifically.
func (u *Updater) VerifyChannel(presented []*x509.Certificate) error {
	if len(presented) == 0 {
		return ErrChannelUntrusted
	}
	if !u.Store.Contains(u.FOTARoot) {
		return fmt.Errorf("%w: device store lacks the FOTA root", ErrChannelUntrusted)
	}
	v := chain.NewVerifier([]*x509.Certificate{u.FOTARoot}, presented[1:], u.At)
	if !v.Validates(presented[0]) {
		return ErrChannelUntrusted
	}
	return nil
}

// VerifyManifest checks the manifest signature against the server
// certificate's public key (which itself chained to the FOTA root).
func (u *Updater) VerifyManifest(serverCert *x509.Certificate, m Manifest) error {
	digest, err := m.signingBytes()
	if err != nil {
		return err
	}
	pub, ok := serverCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("%w: server key is %T", ErrBadSignature, serverCert.PublicKey)
	}
	if !ecdsa.VerifyASN1(pub, digest, m.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Fetch performs the full update check against a live server: TLS
// handshake, channel verification, manifest retrieval and signature
// verification. It returns the verified manifest.
func (u *Updater) Fetch(addr, serverName string) (Manifest, error) {
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName:         serverName,
		InsecureSkipVerify: true, // verification happens below, against the device store
	})
	if err != nil {
		return Manifest{}, fmt.Errorf("fota: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	presented := conn.ConnectionState().PeerCertificates
	if err := u.VerifyChannel(presented); err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.NewDecoder(conn).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("fota: reading manifest: %w", err)
	}
	if err := u.VerifyManifest(presented[0], m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
