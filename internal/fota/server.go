package fota

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Server is the vendor's update endpoint: a TLS listener authenticated by a
// FOTA-root-issued certificate that answers every connection with the
// current signed manifest.
type Server struct {
	ln       net.Listener
	manifest Manifest
	cred     tls.Certificate

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts an update server on 127.0.0.1 (ephemeral port). The
// signer's certificate doubles as the TLS credential, mirroring vendor
// practice of one FOTA service identity.
func NewServer(signer *Signer, manifest Manifest) (*Server, error) {
	if manifest.Signature == nil {
		signed, err := signer.Sign(manifest)
		if err != nil {
			return nil, err
		}
		manifest = signed
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fota: listening: %w", err)
	}
	s := &Server{
		ln:       ln,
		manifest: manifest,
		cred: tls.Certificate{
			Certificate: [][]byte{signer.Cert.Cert.Raw},
			PrivateKey:  signer.Cert.Key,
		},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			tconn := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{s.cred}})
			if err := tconn.Handshake(); err != nil {
				return
			}
			if err := json.NewEncoder(tconn).Encode(s.manifest); err != nil {
				return
			}
			// Best-effort close_notify; the raw conn close is deferred.
			_ = tconn.Close()
		}()
	}
}
