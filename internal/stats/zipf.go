package stats

import (
	"fmt"
	"math"
)

// Zipf samples ranks from a Zipf-Mandelbrot distribution: the probability of
// rank i (0-based) is proportional to 1/(i+1+q)^s. It is used to model the
// heavily skewed popularity of certificate-issuing roots observed by the
// Notary: a handful of roots validate most leaves while a long tail validates
// few or none (Figure 3 of the paper).
//
// The sampler precomputes the cumulative mass so a draw is a binary search,
// which keeps Notary synthesis cheap at large scale.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s >= 0 and shift q >= 0.
// It returns an error if n <= 0.
func NewZipf(n int, s, q float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs n > 0, got %d", n)
	}
	if s < 0 || q < 0 {
		return nil, fmt.Errorf("stats: zipf needs s, q >= 0, got s=%v q=%v", s, q)
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1)+q, -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	// Guard against floating-point drift: the last entry must be exactly 1.
	cdf[n-1] = 1
	return &Zipf{cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N) using src.
func (z *Zipf) Sample(src *Source) int {
	x := src.Float64()
	// Binary search for the first cdf entry >= x.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mass returns the probability mass of rank i.
func (z *Zipf) Mass(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
