// Package stats provides the small statistical substrate used throughout the
// reproduction: deterministic seeded random sources, Zipf-like popularity
// sampling, empirical CDFs, and summary helpers.
//
// Everything in this package is deterministic given a seed. The paper's
// tables and figures are regenerated from fixed seeds, so no function here
// may consult the wall clock or global random state.
package stats

import (
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand.Rand so that
// every generator in the reproduction threads an explicit source instead of
// touching global state.
type Source struct {
	r *rand.Rand
}

// NewSource returns a deterministic source for the given seed.
func NewSource(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int64n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (s *Source) Int64n(n int64) int64 { return s.r.Int63n(n) }

// Float64 returns a pseudo-random float64 in [0.0, 1.0).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Fork derives an independent child source. The child stream is a pure
// function of the parent stream position, so forking keeps generation
// deterministic while letting subsystems consume randomness independently.
func (s *Source) Fork() *Source {
	return NewSource(s.r.Int63())
}

// PickWeighted returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. It panics if weights is empty or sums to a
// non-positive value.
func (s *Source) PickWeighted(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: PickWeighted with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: PickWeighted with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: PickWeighted with non-positive total weight")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
