package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("sources with same seed diverged at step %d", i)
		}
	}
}

func TestSourceForkDeterminism(t *testing.T) {
	a := NewSource(7).Fork()
	b := NewSource(7).Fork()
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("forked sources with same lineage diverged at step %d", i)
		}
	}
}

func TestSourceForkIndependence(t *testing.T) {
	parent := NewSource(7)
	child := parent.Fork()
	// Consuming the child must not change what the parent produces next
	// relative to a parent that forked but whose child was unused.
	parent2 := NewSource(7)
	_ = parent2.Fork()
	for i := 0; i < 1000; i++ {
		child.Float64()
	}
	if parent.Int63() != parent2.Int63() {
		t.Fatal("consuming a fork perturbed the parent stream")
	}
}

func TestPickWeighted(t *testing.T) {
	src := NewSource(1)
	weights := []float64{0, 1, 0}
	for i := 0; i < 100; i++ {
		if got := src.PickWeighted(weights); got != 1 {
			t.Fatalf("PickWeighted with singleton mass picked %d", got)
		}
	}
}

func TestPickWeightedDistribution(t *testing.T) {
	src := NewSource(2)
	weights := []float64{3, 1}
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[src.PickWeighted(weights)]++
	}
	frac := float64(counts[0]) / n
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("weight-3 arm frequency %.3f, want ~0.75", frac)
	}
}

func TestPickWeightedPanics(t *testing.T) {
	src := NewSource(1)
	for _, tc := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PickWeighted(%v) did not panic", tc)
				}
			}()
			src.PickWeighted(tc)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(3)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(src)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should hold roughly Mass(0) of the draws.
	want := z.Mass(0)
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("rank0 frequency %.3f, want %.3f +- 0.02", got, want)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1, 0); err == nil {
		t.Error("NewZipf(0) should error")
	}
	if _, err := NewZipf(10, -1, 0); err == nil {
		t.Error("NewZipf with negative s should error")
	}
	if _, err := NewZipf(10, 1, -1); err == nil {
		t.Error("NewZipf with negative q should error")
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	z, err := NewZipf(37, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < z.N(); i++ {
		total += z.Mass(i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("masses sum to %v, want 1", total)
	}
	if z.Mass(-1) != 0 || z.Mass(z.N()) != 0 {
		t.Fatal("out-of-range mass should be 0")
	}
}

func TestZipfSampleInRange(t *testing.T) {
	// Property: samples are always valid ranks.
	err := quick.Check(func(seed int64) bool {
		z, err := NewZipf(17, 1.0, 0.5)
		if err != nil {
			return false
		}
		src := NewSource(seed)
		for i := 0; i < 100; i++ {
			r := z.Sample(src)
			if r < 0 || r >= 17 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{0, 0, 1, 3, 3, 10})
	if e.Len() != 6 {
		t.Fatalf("Len = %d, want 6", e.Len())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 2.0 / 6}, {0.5, 2.0 / 6}, {1, 3.0 / 6},
		{3, 5.0 / 6}, {9.99, 5.0 / 6}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if zf := e.ZeroFraction(); math.Abs(zf-2.0/6) > 1e-12 {
		t.Errorf("ZeroFraction = %v, want %v", zf, 2.0/6)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.ZeroFraction() != 0 || e.Quantile(0.5) != 0 {
		t.Fatal("empty ECDF should return zeros")
	}
	if len(e.Series()) != 0 {
		t.Fatal("empty ECDF should have empty series")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewECDF mutated its input")
	}
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 5})
	s := e.Series()
	want := []Point{{1, 0.5}, {2, 0.75}, {5, 1}}
	if len(s) != len(want) {
		t.Fatalf("series length %d, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("series[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 4 {
		t.Errorf("Quantile(1) = %v, want 4", q)
	}
}

func TestECDFMonotonic(t *testing.T) {
	// Property: ECDF is monotone non-decreasing and bounded in [0,1].
	err := quick.Check(func(sample []float64, probe []float64) bool {
		e := NewECDF(sample)
		prev := -1.0
		// Probe at sorted positions.
		vals := append([]float64{}, probe...)
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[j] < vals[i] {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		for _, x := range vals {
			if math.IsNaN(x) {
				continue
			}
			y := e.At(x)
			if y < 0 || y > 1 || y < prev {
				return false
			}
			prev = y
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if s := Sum([]float64{1, 2, 3}); s != 6 {
		t.Errorf("Sum = %v, want 6", s)
	}
}
