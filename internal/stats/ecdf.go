package stats

import (
	"encoding/json"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample of
// float64 values. Figure 3 of the paper plots ECDFs of per-root validation
// counts; this type produces both point evaluations and full step-series
// suitable for re-plotting.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is not modified.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of sample points <= x.
// It returns 0 for an empty sample.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// ZeroFraction returns the fraction of sample points equal to zero. In
// Figure 3 this is the y-axis offset of each category: the share of roots
// that validated no Notary certificate at all.
func (e *ECDF) ZeroFraction() float64 {
	return e.At(0) - e.At(math.Nextafter(0, -1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It returns 0 for an empty sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Point is one step of an ECDF series.
type Point struct {
	X float64 `json:"x"` // sample value
	Y float64 `json:"y"` // cumulative fraction <= X
}

// Series returns the full step series of the ECDF: one point per distinct
// sample value, with Y the cumulative fraction at that value.
func (e *ECDF) Series() []Point {
	var pts []Point
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); {
		j := i
		for j < len(e.sorted) && e.sorted[j] == e.sorted[i] {
			j++
		}
		pts = append(pts, Point{X: e.sorted[i], Y: float64(j) / n})
		i = j
	}
	return pts
}

// MarshalJSON renders the ECDF as its step series plus the zero offset, the
// machine-readable form of a Figure 3 curve.
func (e *ECDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		N          int     `json:"n"`
		ZeroOffset float64 `json:"zero_offset"`
		Series     []Point `json:"series"`
	}{N: e.Len(), ZeroOffset: e.ZeroFraction(), Series: e.Series()})
}

// Mean returns the arithmetic mean of the sample, or 0 if empty.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// Sum returns the sum of the sample.
func Sum(sample []float64) float64 {
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum
}
