package tap

import (
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"tangledmass/internal/notary"
)

// Observer receives extracted chains. *notary.Notary satisfies it; tapd
// fans out to a remote notarynet service through the same interface.
type Observer interface {
	Observe(notary.Observation)
}

// Tap is a passive network monitor: a TCP relay that forwards every byte
// untouched while the stream parser lifts certificate chains out of the
// server-to-client direction and hands them to an Observer.
type Tap struct {
	ln       net.Listener
	upstream string
	notary   Observer
	port     int

	mu        sync.Mutex
	closed    bool
	wg        sync.WaitGroup
	extracted atomic.Int64
}

// New starts a tap on 127.0.0.1 (ephemeral port) relaying to upstream.
// Extracted chains are observed into n as traffic on logicalPort (the
// service port the monitored link carries, e.g. 443).
func New(upstream string, n Observer, logicalPort int) (*Tap, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tap: listening: %w", err)
	}
	t := &Tap{ln: ln, upstream: upstream, notary: n, port: logicalPort}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the tap's listening address (clients connect here instead of
// the upstream; a real deployment mirrors packets instead).
func (t *Tap) Addr() string { return t.ln.Addr().String() }

// Extracted returns how many chains the tap has lifted so far.
func (t *Tap) Extracted() int64 { return t.extracted.Load() }

// Close stops the tap.
func (t *Tap) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *Tap) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.relay(conn)
		}()
	}
}

// relay forwards bytes both ways; the server→client leg runs through the
// stream parser.
func (t *Tap) relay(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", t.upstream)
	if err != nil {
		return
	}
	defer server.Close()

	parser := &StreamParser{OnChain: func(chain []*x509.Certificate) {
		t.extracted.Add(1)
		t.notary.Observe(notary.Observation{Chain: chain, Port: t.port})
	}}

	done := make(chan struct{}, 2)
	// client → server: pure relay. Copy errors mean a side hung up; the
	// half-close tells the server the client is done sending.
	go func() {
		_, _ = io.Copy(server, client)
		_ = server.(*net.TCPConn).CloseWrite()
		done <- struct{}{}
	}()
	// server → client: relay + parse.
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := server.Read(buf)
			if n > 0 {
				// Parse first, then forward. A parse error (malformed or
				// unsupported TLS) drops the parser for the rest of the
				// connection but never disturbs the relay.
				if parser != nil && parser.Feed(buf[:n]) != nil {
					parser = nil
				}
				if _, werr := client.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if cw, ok := client.(*net.TCPConn); ok {
			_ = cw.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
