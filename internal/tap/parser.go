// Package tap implements the Notary's sensor mechanism (§4.2): passive
// extraction of certificates from live TLS traffic. A Tap relays TCP bytes
// between client and server without terminating TLS; a stream parser
// watches the server-to-client direction, reassembles the TLS record layer
// and handshake messages, and lifts the server Certificate chain out of the
// handshake — exactly what the ICSI Notary's network monitors do.
//
// The parser understands the TLS 1.0–1.2 wire format. TLS 1.3 encrypts the
// Certificate message, so passive extraction sees nothing there — the same
// visibility boundary real passive monitors hit; taps force their observed
// links to ≤1.2 in tests.
package tap

import (
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"

	"tangledmass/internal/corpus"
)

// TLS record and handshake constants (RFC 5246).
const (
	recordTypeHandshake = 22
	handshakeTypeCert   = 11

	maxRecordLen    = 1<<14 + 2048 // plaintext limit + margin
	maxHandshakeLen = 1 << 20      // certificate chains stay far below this
)

// ErrParse reports malformed TLS framing.
var ErrParse = errors.New("tap: malformed TLS stream")

// StreamParser incrementally consumes one direction of a TCP byte stream
// and emits the first certificate chain found in a TLS handshake. Feed it
// with Write-sized chunks in arrival order; it buffers across record and
// message boundaries.
type StreamParser struct {
	// OnChain is invoked once, with the parsed chain leaf-first.
	OnChain func(chain []*x509.Certificate)

	// Corpus is the intern table chain members are parsed through (nil
	// means the process-wide shared corpus). Interning at the tap matters
	// doubly: the reassembly buffers below are reused across records, and
	// the corpus copies the DER out of them before parsing.
	Corpus *corpus.Corpus

	rec      []byte // pending record-layer bytes
	hs       []byte // reassembled handshake stream
	done     bool
	hardFail bool
}

func (p *StreamParser) corpusOrShared() *corpus.Corpus {
	if p.Corpus != nil {
		return p.Corpus
	}
	return corpus.Shared()
}

// Done reports whether the parser has emitted a chain or given up.
func (p *StreamParser) Done() bool { return p.done || p.hardFail }

// Feed consumes the next chunk of server-to-client bytes. It returns an
// error only for unrecoverable framing violations; a finished parser
// ignores further input.
func (p *StreamParser) Feed(data []byte) error {
	if p.Done() {
		return nil
	}
	p.rec = append(p.rec, data...)
	for !p.Done() {
		if len(p.rec) < 5 {
			return nil // need a full record header
		}
		typ := p.rec[0]
		length := int(binary.BigEndian.Uint16(p.rec[3:5]))
		if length > maxRecordLen {
			p.hardFail = true
			return fmt.Errorf("%w: record length %d", ErrParse, length)
		}
		if len(p.rec) < 5+length {
			return nil // record body incomplete
		}
		body := p.rec[5 : 5+length]
		p.rec = p.rec[5+length:]
		if typ != recordTypeHandshake {
			// ChangeCipherSpec / alert / application data: after the cipher
			// change the stream is opaque to a passive observer. A TLS 1.3
			// server never shows a plaintext Certificate, so these records
			// are simply skipped until the connection ends.
			continue
		}
		p.hs = append(p.hs, body...)
		if err := p.drainHandshake(); err != nil {
			p.hardFail = true
			return err
		}
	}
	return nil
}

// drainHandshake parses complete handshake messages from the reassembled
// stream.
func (p *StreamParser) drainHandshake() error {
	for len(p.hs) >= 4 && !p.Done() {
		msgType := p.hs[0]
		msgLen := int(p.hs[1])<<16 | int(p.hs[2])<<8 | int(p.hs[3])
		if msgLen > maxHandshakeLen {
			return fmt.Errorf("%w: handshake length %d", ErrParse, msgLen)
		}
		if len(p.hs) < 4+msgLen {
			return nil // message spans further records
		}
		msg := p.hs[4 : 4+msgLen]
		p.hs = p.hs[4+msgLen:]
		if msgType != handshakeTypeCert {
			continue
		}
		chain, err := p.parseCertificateMessage(msg)
		if err != nil {
			return err
		}
		p.done = true
		if p.OnChain != nil && len(chain) > 0 {
			p.OnChain(chain)
		}
	}
	return nil
}

// parseCertificateMessage decodes the TLS ≤1.2 Certificate message body:
// a 3-byte total length, then 3-byte-length-prefixed DER certificates.
// Each certificate is interned — a repeat observation of a chain costs
// content hashes, not parses, and the emitted *x509.Certificate values are
// the canonical corpus instances, not fresh copies aliasing p's buffers.
func (p *StreamParser) parseCertificateMessage(msg []byte) ([]*x509.Certificate, error) {
	if len(msg) < 3 {
		return nil, fmt.Errorf("%w: short certificate message", ErrParse)
	}
	total := int(msg[0])<<16 | int(msg[1])<<8 | int(msg[2])
	msg = msg[3:]
	if total != len(msg) {
		return nil, fmt.Errorf("%w: certificate list length %d != %d", ErrParse, total, len(msg))
	}
	cp := p.corpusOrShared()
	var chain []*x509.Certificate
	for len(msg) > 0 {
		if len(msg) < 3 {
			return nil, fmt.Errorf("%w: truncated certificate entry", ErrParse)
		}
		n := int(msg[0])<<16 | int(msg[1])<<8 | int(msg[2])
		msg = msg[3:]
		if n > len(msg) {
			return nil, fmt.Errorf("%w: certificate entry overruns message", ErrParse)
		}
		ref, err := cp.Intern(msg[:n])
		if err != nil {
			return nil, fmt.Errorf("%w: bad DER: %v", ErrParse, err)
		}
		chain = append(chain, cp.Cert(ref))
		msg = msg[n:]
	}
	return chain, nil
}
