package tap

import (
	"crypto/tls"
	"crypto/x509"
	"io"
	"testing"
	"testing/quick"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

// env runs an origin TLS server (sites world) for tap tests.
func env(t *testing.T) (*tlsnet.Server, *tlsnet.Sites) {
	t.Helper()
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: 77, NumLeaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sites
}

// dialThroughTap handshakes with host via the tap, forcing TLS 1.2 so the
// Certificate message is visible on the wire.
func dialThroughTap(t *testing.T, tp *Tap, host string) []*x509.Certificate {
	t.Helper()
	conn, err := tls.Dial("tcp", tp.Addr(), &tls.Config{
		ServerName:         host,
		InsecureSkipVerify: true,
		MaxVersion:         tls.VersionTLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Read the banner to let the relay settle.
	buf := make([]byte, 4)
	io.ReadFull(conn, buf)
	return conn.ConnectionState().PeerCertificates
}

func TestPassiveExtraction(t *testing.T) {
	srv, sites := env(t)
	n := notary.New(certgen.Epoch)
	tp, err := New(srv.Addr(), n, 443)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	hosts := []string{"gmail.com", "www.google.com", "www.twitter.com"}
	for _, host := range hosts {
		presented := dialThroughTap(t, tp, host)
		if len(presented) == 0 {
			t.Fatalf("%s: no chain presented", host)
		}
	}
	// The tap may record asynchronously relative to our reads; allow it to
	// settle.
	deadline := time.Now().Add(2 * time.Second)
	for tp.Extracted() < int64(len(hosts)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := tp.Extracted(); got != int64(len(hosts)) {
		t.Fatalf("extracted %d chains, want %d", got, len(hosts))
	}
	if n.Sessions() != int64(len(hosts)) {
		t.Errorf("notary sessions = %d", n.Sessions())
	}
	// The passively extracted leaves match what the sites actually serve.
	for _, host := range hosts {
		site := sites.LookupHost(host)
		if !n.HasRecord(site.Chain[0]) {
			t.Errorf("notary missing passively-extracted leaf for %s", host)
		}
	}
	// And they were seen in leaf position, so they count for validation.
	rep := n.ValidateOne(storeOf(t, sites, hosts))
	if rep.Validated != len(hosts) {
		t.Errorf("validated %d of %d extracted leaves", rep.Validated, len(hosts))
	}
}

// storeOf builds a store of the issuing roots for the given hosts.
func storeOf(t *testing.T, sites *tlsnet.Sites, hosts []string) *rootstore.Store {
	t.Helper()
	s := rootstore.New("tap roots")
	for _, h := range hosts {
		chain := sites.LookupHost(h).Chain
		s.Add(chain[len(chain)-1])
	}
	return s
}

func TestTLS13HidesCertificates(t *testing.T) {
	srv, _ := env(t)
	n := notary.New(certgen.Epoch)
	tp, err := New(srv.Addr(), n, 443)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	conn, err := tls.Dial("tcp", tp.Addr(), &tls.Config{
		ServerName:         "gmail.com",
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS13,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	io.ReadFull(conn, buf)
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	if tp.Extracted() != 0 {
		t.Error("TLS 1.3 certificates are encrypted; passive extraction must see nothing")
	}
}

func TestRelayTransparency(t *testing.T) {
	// The client's view through the tap is byte-identical to a direct
	// connection: same chain, working application data.
	srv, sites := env(t)
	n := notary.New(certgen.Epoch)
	tp, err := New(srv.Addr(), n, 443)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	viaTap := dialThroughTap(t, tp, "www.google.com")
	site := sites.LookupHost("www.google.com")
	if string(viaTap[0].Raw) != string(site.Chain[0].Raw) {
		t.Error("tap altered the presented leaf")
	}
}

func TestParserDirect(t *testing.T) {
	// Feed a hand-built Certificate handshake split across records and
	// chunk boundaries.
	g := certgen.NewGenerator(170)
	root, _ := g.SelfSignedCA("Tap Parser Root")
	leaf, _ := g.Leaf(root, "tap.example.com")
	msg := buildCertMessage([][]byte{leaf.Cert.Raw, root.Cert.Raw})

	// Split the handshake message across two TLS records.
	half := len(msg) / 2
	stream := append(record(msg[:half]), record(msg[half:])...)

	var got []*x509.Certificate
	p := &StreamParser{OnChain: func(c []*x509.Certificate) { got = c }}
	// Feed byte-by-byte to exercise every reassembly path.
	for _, b := range stream {
		if err := p.Feed([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Done() || len(got) != 2 {
		t.Fatalf("parsed %d certs, done=%v", len(got), p.Done())
	}
	if got[0].Subject.CommonName != "tap.example.com" {
		t.Errorf("leaf CN = %s", got[0].Subject.CommonName)
	}
}

func TestParserRejectsGarbage(t *testing.T) {
	// Oversized record length.
	p := &StreamParser{}
	if err := p.Feed([]byte{22, 3, 3, 0xff, 0xff, 0}); err == nil {
		t.Error("oversized record should error")
	}
	// Bad certificate DER inside a well-framed message.
	p2 := &StreamParser{}
	msg := []byte{0, 0, 7, 0, 0, 4, 'j', 'u', 'n', 'k'}
	full := append([]byte{handshakeTypeCert, 0, 0, byte(len(msg))}, msg...)
	if err := p2.Feed(record(full)); err == nil {
		t.Error("junk DER should error")
	}
}

func TestParserFuzz(t *testing.T) {
	// Property: arbitrary bytes never panic the parser.
	err := quick.Check(func(chunks [][]byte) bool {
		p := &StreamParser{}
		for _, c := range chunks {
			p.Feed(c) // errors fine; panics are not
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// record wraps payload in one TLS 1.2 handshake record.
func record(payload []byte) []byte {
	hdr := []byte{recordTypeHandshake, 3, 3, byte(len(payload) >> 8), byte(len(payload))}
	return append(hdr, payload...)
}

// buildCertMessage builds a full Certificate handshake message.
func buildCertMessage(ders [][]byte) []byte {
	var list []byte
	for _, der := range ders {
		list = append(list, byte(len(der)>>16), byte(len(der)>>8), byte(len(der)))
		list = append(list, der...)
	}
	body := append([]byte{byte(len(list) >> 16), byte(len(list) >> 8), byte(len(list))}, list...)
	return append([]byte{handshakeTypeCert, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}, body...)
}

func TestTapUpstreamUnreachable(t *testing.T) {
	n := notary.New(certgen.Epoch)
	tp, err := New("127.0.0.1:1", n, 443) // nothing listens on port 1
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	conn, err := tls.Dial("tcp", tp.Addr(), &tls.Config{InsecureSkipVerify: true})
	if err == nil {
		conn.Close()
		t.Error("handshake through a dead upstream should fail")
	}
	if tp.Extracted() != 0 {
		t.Error("nothing should be extracted")
	}
}

func TestTapCloseIdempotent(t *testing.T) {
	n := notary.New(certgen.Epoch)
	tp, err := New("127.0.0.1:1", n, 443)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
