package report

import (
	"fmt"
	"strings"

	"tangledmass/internal/analysis"
	"tangledmass/internal/mitm"
)

// Markdown renderers mirror the text renderers one-for-one, producing
// GitHub-flavored tables — the format EXPERIMENTS.md records results in.

func mdTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// Table1Markdown renders store sizes.
func Table1Markdown(rows []analysis.StoreSize) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, fmt.Sprint(r.Certs)}
	}
	return mdTable([]string{"Root store", "No. certificates"}, out)
}

// Table2Markdown renders the top devices and manufacturers side by side.
func Table2Markdown(devices, manufacturers []analysis.CountRow) string {
	n := len(devices)
	if len(manufacturers) > n {
		n = len(manufacturers)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := []string{"", "", "", ""}
		if i < len(devices) {
			row[0], row[1] = devices[i].Name, fmt.Sprint(devices[i].Sessions)
		}
		if i < len(manufacturers) {
			row[2], row[3] = manufacturers[i].Name, fmt.Sprint(manufacturers[i].Sessions)
		}
		rows[i] = row
	}
	return mdTable([]string{"Device model", "Sessions", "Manufacturer", "Sessions"}, rows)
}

// Table3Markdown renders validation totals.
func Table3Markdown(rows []analysis.CategoryValidation) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, fmt.Sprint(r.Validated)}
	}
	return mdTable([]string{"Root store", "No. validated certificates"}, out)
}

// Table4Markdown renders per-category zero-validation shares.
func Table4Markdown(rows []analysis.CategoryValidation) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, fmt.Sprint(r.TotalRoots), fmt.Sprintf("%.0f%%", r.ZeroFraction*100)}
	}
	return mdTable([]string{"Category", "Total root certs", "Zero-validation share"}, out)
}

// Table5Markdown renders the rooted-device exclusives.
func Table5Markdown(rows []analysis.RootedExclusive) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, fmt.Sprint(r.Devices)}
	}
	return mdTable([]string{"Certificate authority", "Total devices"}, out)
}

// Table6Markdown renders the interception split.
func Table6Markdown(intercepted, clean []mitm.Finding) string {
	n := len(intercepted)
	if len(clean) > n {
		n = len(clean)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := []string{"", ""}
		if i < len(intercepted) {
			row[0] = fmt.Sprintf("%s:%d", intercepted[i].Host, intercepted[i].Port)
		}
		if i < len(clean) {
			row[1] = fmt.Sprintf("%s:%d", clean[i].Host, clean[i].Port)
		}
		rows[i] = row
	}
	return mdTable([]string{"Intercepted domains", "Whitelisted domains"}, rows)
}

// HeadlinesMarkdown renders the §5/§6 numbers.
func HeadlinesMarkdown(h analysis.Headlines) string {
	rows := [][]string{
		{"Sessions", fmt.Sprint(h.TotalSessions)},
		{"Handsets", fmt.Sprint(h.Handsets)},
		{"Device models", fmt.Sprint(h.Models)},
		{"Unique root certificates", fmt.Sprint(h.UniqueRoots)},
		{"Sessions with extended stores", fmt.Sprintf("%.1f%%", h.ExtendedFraction*100)},
		{"Handsets missing AOSP certs", fmt.Sprint(h.MissingHandsets)},
		{"4.1/4.2 sessions adding >40 certs", fmt.Sprintf("%.1f%%", h.Over40Fraction41_42*100)},
		{"Sessions on rooted handsets", fmt.Sprintf("%.1f%%", h.RootedFraction*100)},
		{"Rooted sessions with rooted-only certs", fmt.Sprintf("%.1f%%", h.RootedExclusiveOfRoots*100)},
		{"TLS-intercepted sessions", fmt.Sprint(h.InterceptedSessions)},
	}
	return mdTable([]string{"Metric", "Value"}, rows)
}
