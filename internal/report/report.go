// Package report renders the reproduction's tables and figure data series
// as aligned text, one renderer per table/figure of the paper. The output is
// what cmd/paperfigs prints and what EXPERIMENTS.md records.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"tangledmass/internal/analysis"
	"tangledmass/internal/mitm"
)

// rowPrinter writes rows into a tab writer backed by an in-memory builder.
// Such writes cannot fail, so the methods absorb the impossible error once,
// here, instead of at every renderer call site; a failure would mean the
// in-memory sink itself broke, which is worth crashing over.
type rowPrinter struct {
	w *tabwriter.Writer
}

func (p rowPrinter) printf(format string, args ...any) {
	if _, err := fmt.Fprintf(p.w, format, args...); err != nil {
		panic("report: writing table row: " + err.Error())
	}
}

func (p rowPrinter) println(line string) {
	p.printf("%s\n", line)
}

func table(fill func(p rowPrinter)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fill(rowPrinter{w})
	if err := w.Flush(); err != nil {
		panic("report: flushing table: " + err.Error())
	}
	return b.String()
}

// Table1 renders the store-size table.
func Table1(rows []analysis.StoreSize) string {
	return table(func(p rowPrinter) {
		p.println("Root store\tNo. certificates")
		for _, r := range rows {
			p.printf("%s\t%d\n", r.Name, r.Certs)
		}
	})
}

// Table2 renders the top devices and manufacturers.
func Table2(devices, manufacturers []analysis.CountRow) string {
	return table(func(p rowPrinter) {
		p.println("Device model\tNo. sessions\tManufacturer\tNo. sessions")
		n := len(devices)
		if len(manufacturers) > n {
			n = len(manufacturers)
		}
		for i := 0; i < n; i++ {
			var d, m string
			if i < len(devices) {
				d = fmt.Sprintf("%s\t%d", devices[i].Name, devices[i].Sessions)
			} else {
				d = "\t"
			}
			if i < len(manufacturers) {
				m = fmt.Sprintf("%s\t%d", manufacturers[i].Name, manufacturers[i].Sessions)
			} else {
				m = "\t"
			}
			p.printf("%s\t%s\n", d, m)
		}
	})
}

// Table3 renders per-store validation totals.
func Table3(rows []analysis.CategoryValidation) string {
	return table(func(p rowPrinter) {
		p.println("Root store\tNo. validated certificates")
		for _, r := range rows {
			p.printf("%s\t%d\n", r.Name, r.Validated)
		}
	})
}

// Table4 renders per-category root counts and zero-validation shares.
func Table4(rows []analysis.CategoryValidation) string {
	return table(func(p rowPrinter) {
		p.println("Root store category\tTotal root certs\tRoot certs that do not validate Notary certs")
		for _, r := range rows {
			p.printf("%s\t%d\t%.0f%%\n", r.Name, r.TotalRoots, r.ZeroFraction*100)
		}
	})
}

// Table5 renders the rooted-device exclusives.
func Table5(rows []analysis.RootedExclusive) string {
	return table(func(p rowPrinter) {
		p.println("Certificate authority\tTotal devices")
		for _, r := range rows {
			p.printf("%s\t%d\n", r.Name, r.Devices)
		}
	})
}

// Table6 renders the interception split.
func Table6(intercepted, clean []mitm.Finding) string {
	return table(func(p rowPrinter) {
		p.println("Intercepted domains\tWhitelisted domains")
		n := len(intercepted)
		if len(clean) > n {
			n = len(clean)
		}
		for i := 0; i < n; i++ {
			var a, b string
			if i < len(intercepted) {
				a = fmt.Sprintf("%s:%d", intercepted[i].Host, intercepted[i].Port)
			}
			if i < len(clean) {
				b = fmt.Sprintf("%s:%d", clean[i].Host, clean[i].Port)
			}
			p.printf("%s\t%s\n", a, b)
		}
	})
}

// Figure1 renders the extended-store scatter as grouped rows.
func Figure1(points []analysis.ScatterPoint) string {
	return table(func(p rowPrinter) {
		p.println("Manufacturer\tVersion\tAOSP certs\tExtra certs\tSessions")
		for _, pt := range points {
			p.printf("%s\t%s\t%d\t%d\t%d\n",
				pt.Manufacturer, pt.Version, pt.AOSPCerts, pt.ExtraCerts, pt.Sessions)
		}
	})
}

// Figure2 renders the attribution matrix, largest ratios first within each
// group, capped at maxPerGroup rows per group (0 = unlimited).
func Figure2(cells []analysis.AttributionCell, maxPerGroup int) string {
	byGroup := map[string][]analysis.AttributionCell{}
	var groups []string
	for _, c := range cells {
		if _, ok := byGroup[c.Group]; !ok {
			groups = append(groups, c.Group)
		}
		byGroup[c.Group] = append(byGroup[c.Group], c)
	}
	sort.Strings(groups)
	return table(func(p rowPrinter) {
		p.println("Group\tCertificate\tHash\tRatio\tPresence")
		for _, g := range groups {
			cs := byGroup[g]
			sort.Slice(cs, func(i, j int) bool {
				if cs[i].Ratio != cs[j].Ratio {
					return cs[i].Ratio > cs[j].Ratio
				}
				return cs[i].CertName < cs[j].CertName
			})
			if maxPerGroup > 0 && len(cs) > maxPerGroup {
				cs = cs[:maxPerGroup]
			}
			for _, c := range cs {
				p.printf("%s\t%s\t(%s)\t%.2f\t%s\n", g, c.CertName, c.CertHash, c.Ratio, c.Class)
			}
		}
	})
}

// Figure3 renders each category's ECDF as value:cumfrac pairs sampled at up
// to maxPoints distinct values, preceded by the zero-validation offset.
func Figure3(rows []analysis.CategoryValidation, maxPoints int) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%s (roots=%d, zero-offset=%.2f)\n", r.Name, r.TotalRoots, r.ZeroFraction))
		series := r.ECDF.Series()
		step := 1
		if maxPoints > 0 && len(series) > maxPoints {
			step = (len(series) + maxPoints - 1) / maxPoints
		}
		for i := 0; i < len(series); i += step {
			b.WriteString(fmt.Sprintf("  x=%.0f y=%.3f\n", series[i].X, series[i].Y))
		}
		if len(series) > 0 && (len(series)-1)%step != 0 {
			last := series[len(series)-1]
			b.WriteString(fmt.Sprintf("  x=%.0f y=%.3f\n", last.X, last.Y))
		}
	}
	return b.String()
}

// TrustAttributionTable renders the interception-attribution matrix: the
// per-cause totals first, then the (cause, channel, API level) detail rows.
func TrustAttributionTable(ta analysis.TrustAttribution) string {
	return table(func(p rowPrinter) {
		p.printf("Sessions\t%d\n", ta.TotalSessions)
		p.printf("Interceptable sessions\t%d\n", ta.Exposed)
		for _, c := range ta.ByCause {
			p.printf("Cause %s\t%d\n", c.Cause, c.Sessions)
		}
		p.println("Cause\tChannel\tAPI level\tSessions")
		for _, r := range ta.Rows {
			p.printf("%s\t%s\t%d\t%d\n", r.Cause, r.Channel, r.APILevel, r.Sessions)
		}
	})
}

// Headlines renders the §5/§6 prose numbers.
func Headlines(h analysis.Headlines) string {
	return table(func(p rowPrinter) {
		p.printf("Sessions\t%d\n", h.TotalSessions)
		p.printf("Handsets\t%d\n", h.Handsets)
		p.printf("Device models\t%d\n", h.Models)
		p.printf("Unique root certificates\t%d\n", h.UniqueRoots)
		p.printf("Sessions with extended stores\t%.1f%%\n", h.ExtendedFraction*100)
		p.printf("Handsets missing AOSP certs\t%d\n", h.MissingHandsets)
		p.printf("4.1/4.2 sessions adding >40 certs\t%.1f%%\n", h.Over40Fraction41_42*100)
		p.printf("Sessions on rooted handsets\t%.1f%%\n", h.RootedFraction*100)
		p.printf("Rooted sessions with rooted-only certs\t%.1f%%\n", h.RootedExclusiveOfRoots*100)
		p.printf("TLS-intercepted sessions\t%d\n", h.InterceptedSessions)
	})
}
