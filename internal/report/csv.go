package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"tangledmass/internal/analysis"
)

// CSV writers produce plot-ready data files for each figure — the form a
// paper's plotting scripts (the original used R) consume.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: writing csv header: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("report: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure1CSV writes the scatter points: manufacturer, version, AOSP certs,
// extra certs, sessions.
func Figure1CSV(w io.Writer, points []analysis.ScatterPoint) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			p.Manufacturer, p.Version,
			strconv.Itoa(p.AOSPCerts), strconv.Itoa(p.ExtraCerts), strconv.Itoa(p.Sessions),
		}
	}
	return writeCSV(w, []string{"manufacturer", "version", "aosp_certs", "extra_certs", "sessions"}, rows)
}

// Figure2CSV writes the attribution cells: group kind, group, certificate,
// hash, sessions, ratio, presence class.
func Figure2CSV(w io.Writer, cells []analysis.AttributionCell) error {
	rows := make([][]string, len(cells))
	for i, c := range cells {
		rows[i] = []string{
			c.GroupKind, c.Group, c.CertName, c.CertHash,
			strconv.Itoa(c.Sessions), strconv.FormatFloat(c.Ratio, 'f', 4, 64), string(c.Class),
		}
	}
	return writeCSV(w, []string{"group_kind", "group", "certificate", "hash", "sessions", "ratio", "presence"}, rows)
}

// Figure3CSV writes every category's ECDF series: category, x, y, plus a
// first row per category carrying the zero offset.
func Figure3CSV(w io.Writer, cats []analysis.CategoryValidation) error {
	var rows [][]string
	for _, c := range cats {
		for _, pt := range c.ECDF.Series() {
			rows = append(rows, []string{
				c.Name,
				strconv.FormatFloat(pt.X, 'f', 0, 64),
				strconv.FormatFloat(pt.Y, 'f', 6, 64),
				strconv.FormatFloat(c.ZeroFraction, 'f', 6, 64),
			})
		}
	}
	return writeCSV(w, []string{"category", "x", "y", "zero_offset"}, rows)
}

// Table4CSV writes the per-category validation summary.
func Table4CSV(w io.Writer, cats []analysis.CategoryValidation) error {
	rows := make([][]string, len(cats))
	for i, c := range cats {
		rows[i] = []string{
			c.Name, strconv.Itoa(c.TotalRoots),
			strconv.FormatFloat(c.ZeroFraction, 'f', 4, 64), strconv.Itoa(c.Validated),
		}
	}
	return writeCSV(w, []string{"category", "total_roots", "zero_fraction", "validated"}, rows)
}
