package report

import (
	"strings"
	"testing"

	"tangledmass/internal/analysis"
	"tangledmass/internal/mitm"
	"tangledmass/internal/stats"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1([]analysis.StoreSize{{Name: "AOSP 4.4", Certs: 150}, {Name: "Mozilla", Certs: 153}})
	for _, want := range []string{"Root store", "AOSP 4.4", "150", "Mozilla", "153"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(
		[]analysis.CountRow{{Name: "Galaxy SIV", Sessions: 2762}},
		[]analysis.CountRow{{Name: "SAMSUNG", Sessions: 7709}, {Name: "LG", Sessions: 2908}},
	)
	for _, want := range []string{"Galaxy SIV", "2762", "SAMSUNG", "LG"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 rows
		t.Errorf("Table2 rendered %d lines, want 3:\n%s", lines, out)
	}
}

func TestTable4Rendering(t *testing.T) {
	out := Table4([]analysis.CategoryValidation{
		{Name: "AOSP 4.4 certs", TotalRoots: 150, ZeroFraction: 0.23},
	})
	if !strings.Contains(out, "23%") {
		t.Errorf("Table4 missing percentage:\n%s", out)
	}
}

func TestTable5Rendering(t *testing.T) {
	out := Table5([]analysis.RootedExclusive{{Name: "CRAZY HOUSE", Devices: 70}})
	if !strings.Contains(out, "CRAZY HOUSE") || !strings.Contains(out, "70") {
		t.Errorf("Table5 output:\n%s", out)
	}
}

func TestTable6Rendering(t *testing.T) {
	out := Table6(
		[]mitm.Finding{{Host: "gmail.com", Port: 443}},
		[]mitm.Finding{{Host: "www.google.com", Port: 443}, {Host: "supl.google.com", Port: 7275}},
	)
	for _, want := range []string{"gmail.com:443", "www.google.com:443", "supl.google.com:7275"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Rendering(t *testing.T) {
	out := Figure1([]analysis.ScatterPoint{
		{Manufacturer: "SAMSUNG", Version: "4.1", AOSPCerts: 139, ExtraCerts: 6, Sessions: 42},
	})
	for _, want := range []string{"SAMSUNG", "4.1", "139", "6", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
}

func TestFigure2RenderingCapsRows(t *testing.T) {
	cells := []analysis.AttributionCell{
		{Group: "HTC 4.1", CertName: "A", CertHash: "00000001", Ratio: 0.9, Class: analysis.ClassOnlyAndroid},
		{Group: "HTC 4.1", CertName: "B", CertHash: "00000002", Ratio: 0.5, Class: analysis.ClassIOS7Only},
		{Group: "HTC 4.1", CertName: "C", CertHash: "00000003", Ratio: 0.1, Class: analysis.ClassNotRecorded},
	}
	out := Figure2(cells, 2)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("Figure2 should keep the top ratios:\n%s", out)
	}
	if strings.Contains(out, "00000003") {
		t.Errorf("Figure2 should cap rows per group:\n%s", out)
	}
}

func TestFigure3Rendering(t *testing.T) {
	rows := []analysis.CategoryValidation{{
		Name:         "AOSP 4.4 certs",
		TotalRoots:   4,
		ZeroFraction: 0.25,
		ECDF:         stats.NewECDF([]float64{0, 10, 20, 500}),
	}}
	out := Figure3(rows, 10)
	for _, want := range []string{"zero-offset=0.25", "x=0", "x=500", "y=1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestHeadlinesRendering(t *testing.T) {
	out := Headlines(analysis.Headlines{
		TotalSessions: 15970, ExtendedFraction: 0.39, RootedFraction: 0.24,
		InterceptedSessions: 1,
	})
	for _, want := range []string{"15970", "39.0%", "24.0%", "TLS-intercepted sessions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Headlines missing %q:\n%s", want, out)
		}
	}
}

func TestTrustAttributionRendering(t *testing.T) {
	out := TrustAttributionTable(analysis.TrustAttribution{
		TotalSessions: 100, Exposed: 30,
		ByCause: []analysis.CauseCount{
			{Cause: "store-tampering", Sessions: 12},
			{Cause: "clean", Sessions: 70},
		},
		Rows: []analysis.TrustAttributionRow{
			{Cause: "store-tampering", Channel: "system", APILevel: 19, Sessions: 5},
		},
	})
	for _, want := range []string{"Interceptable sessions", "Cause store-tampering", "system", "19"} {
		if !strings.Contains(out, want) {
			t.Errorf("TrustAttributionTable missing %q:\n%s", want, out)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	var buf strings.Builder
	err := Figure1CSV(&buf, []analysis.ScatterPoint{
		{Manufacturer: "HTC", Version: "4.1", AOSPCerts: 139, ExtraCerts: 82, Sessions: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HTC,4.1,139,82,9") {
		t.Errorf("figure1 csv:\n%s", buf.String())
	}

	buf.Reset()
	err = Figure2CSV(&buf, []analysis.AttributionCell{{
		GroupKind: "operator", Group: "VERIZON(US)", CertName: "Certisign AC1S",
		CertHash: "deadbeef", Sessions: 12, Ratio: 0.65, Class: analysis.ClassNotRecorded,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "operator,VERIZON(US),Certisign AC1S,deadbeef,12,0.6500") {
		t.Errorf("figure2 csv:\n%s", buf.String())
	}

	buf.Reset()
	cats := []analysis.CategoryValidation{{
		Name: "AOSP 4.4 certs", TotalRoots: 150, ZeroFraction: 0.23, Validated: 12413,
		ECDF: stats.NewECDF([]float64{0, 5, 200}),
	}}
	if err := Figure3CSV(&buf, cats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "AOSP 4.4 certs") != 3 {
		t.Errorf("figure3 csv should have one row per ECDF step:\n%s", out)
	}
	if !strings.Contains(out, "0.230000") {
		t.Errorf("figure3 csv missing zero offset:\n%s", out)
	}

	buf.Reset()
	if err := Table4CSV(&buf, cats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AOSP 4.4 certs,150,0.2300,12413") {
		t.Errorf("table4 csv:\n%s", buf.String())
	}
}
