package report

import (
	"strings"
	"testing"

	"tangledmass/internal/analysis"
	"tangledmass/internal/mitm"
	"tangledmass/internal/stats"
)

// mdWellFormed checks every line is a table row with the same column count.
func mdWellFormed(t *testing.T, md string, cols int) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("markdown too short:\n%s", md)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "| ") || !strings.HasSuffix(line, " |") {
			t.Fatalf("line %d not a table row: %q", i, line)
		}
		if got := strings.Count(line, "|") - 1; got != cols {
			t.Fatalf("line %d has %d columns, want %d: %q", i, got, cols, line)
		}
	}
}

func TestTable1Markdown(t *testing.T) {
	md := Table1Markdown([]analysis.StoreSize{{Name: "AOSP 4.4", Certs: 150}})
	mdWellFormed(t, md, 2)
	if !strings.Contains(md, "| AOSP 4.4 | 150 |") {
		t.Errorf("missing row:\n%s", md)
	}
}

func TestTable2MarkdownRagged(t *testing.T) {
	md := Table2Markdown(
		[]analysis.CountRow{{Name: "Galaxy SIV", Sessions: 2762}},
		[]analysis.CountRow{{Name: "SAMSUNG", Sessions: 7709}, {Name: "LG", Sessions: 2908}},
	)
	mdWellFormed(t, md, 4)
	if !strings.Contains(md, "LG") {
		t.Error("missing manufacturer overflow row")
	}
}

func TestTable4And5Markdown(t *testing.T) {
	md := Table4Markdown([]analysis.CategoryValidation{
		{Name: "AOSP 4.4 certs", TotalRoots: 150, ZeroFraction: 0.23},
	})
	mdWellFormed(t, md, 3)
	if !strings.Contains(md, "23%") {
		t.Error("missing percentage")
	}
	md5 := Table5Markdown([]analysis.RootedExclusive{{Name: "CRAZY HOUSE", Devices: 70}})
	mdWellFormed(t, md5, 2)
	if !strings.Contains(md5, "CRAZY HOUSE") {
		t.Error("missing CA")
	}
}

func TestTable6AndHeadlinesMarkdown(t *testing.T) {
	md := Table6Markdown(
		[]mitm.Finding{{Host: "gmail.com", Port: 443}},
		[]mitm.Finding{{Host: "www.google.com", Port: 443}, {Host: "supl.google.com", Port: 7275}},
	)
	mdWellFormed(t, md, 2)
	if !strings.Contains(md, "supl.google.com:7275") {
		t.Error("missing whitelisted row")
	}
	hm := HeadlinesMarkdown(analysis.Headlines{TotalSessions: 15970, ExtendedFraction: 0.39})
	mdWellFormed(t, hm, 2)
	if !strings.Contains(hm, "15970") || !strings.Contains(hm, "39.0%") {
		t.Error("missing headline values")
	}
}

func TestTable3Markdown(t *testing.T) {
	md := Table3Markdown([]analysis.CategoryValidation{
		{Name: "Mozilla", Validated: 12476, ECDF: stats.NewECDF(nil)},
	})
	mdWellFormed(t, md, 2)
	if !strings.Contains(md, "12476") {
		t.Error("missing count")
	}
}
