package device

import (
	"crypto/x509"
	"os"
	"path/filepath"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/rootstore"
)

func TestSaveLoadFSRoundTrip(t *testing.T) {
	u := cauniverse.Default()
	adds := []string{"Motorola FOTA Root CA", "Motorola SUPL Server Root CA"}
	var firmware []*x509.Certificate
	for _, n := range adds {
		firmware = append(firmware, u.Root(n).Issued.Cert)
	}
	d := New(Profile{Model: "Droid Razr", Manufacturer: "MOTOROLA", Operator: "VERIZON", Country: "US", Version: "4.1"},
		u.AOSP("4.1"), firmware)
	d.AddUserCert(u.Root("USER_X").Issued.Cert)
	disabledID := certid.IdentityOf(d.SystemStore().Certificates()[5])
	d.DisableCert(disabledID)
	d.Root()

	dir := t.TempDir()
	if err := d.SaveFS(dir); err != nil {
		t.Fatal(err)
	}
	// The system store directory is a valid cacerts dir on its own.
	sys, err := rootstore.ReadCacertsDir(filepath.Join(dir, "system/etc/security/cacerts"))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 141 {
		t.Errorf("system dir = %d certs, want 139+2", sys.Len())
	}

	back, err := LoadFS(dir, d.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if !rootstore.Equal(back.SystemStore(), d.SystemStore()) {
		t.Error("system store differs after round-trip")
	}
	if !rootstore.Equal(back.UserStore(), d.UserStore()) {
		t.Error("user store differs after round-trip")
	}
	if !back.Disabled(disabledID) {
		t.Error("disabled set lost in round-trip")
	}
	if !back.Rooted() {
		t.Error("rooted marker lost in round-trip")
	}
	if !rootstore.Equal(back.EffectiveStore(), d.EffectiveStore()) {
		t.Error("effective store differs after round-trip")
	}
}

func TestLoadFSMinimalImage(t *testing.T) {
	// An image with only a system store (no /data) loads as a clean,
	// non-rooted device.
	u := cauniverse.Default()
	d := New(Profile{Model: "Nexus 5", Manufacturer: "LG", Version: "4.4"}, u.AOSP("4.4"), nil)
	dir := t.TempDir()
	if err := rootstore.WriteCacertsDir(filepath.Join(dir, "system/etc/security/cacerts"), d.SystemStore()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFS(dir, d.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rooted() {
		t.Error("minimal image should not be rooted")
	}
	if back.UserStore().Len() != 0 {
		t.Error("minimal image should have no user certs")
	}
	if back.SystemStore().Len() != 150 {
		t.Errorf("system = %d", back.SystemStore().Len())
	}
}

func TestLoadFSMissingSystemStore(t *testing.T) {
	if _, err := LoadFS(t.TempDir(), Profile{}); err == nil {
		t.Error("image without a system store should error")
	}
}

func TestSaveFSDisabledUserCert(t *testing.T) {
	u := cauniverse.Default()
	d := New(Profile{Model: "X", Manufacturer: "Y", Version: "4.4"}, u.AOSP("4.4"), nil)
	userCert := u.Root("MIND OVERFLOW").Issued.Cert
	d.AddUserCert(userCert)
	d.DisableCert(certid.IdentityOf(userCert))
	dir := t.TempDir()
	if err := d.SaveFS(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "data/misc/keychain/cacerts-removed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("removed dir = %d files, want 1", len(entries))
	}
	back, err := LoadFS(dir, d.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if back.EffectiveStore().Contains(userCert) {
		t.Error("disabled user cert should stay disabled after load")
	}
}
