package device

import (
	"fmt"
	"os"
	"path/filepath"

	"tangledmass/internal/corpus"
	"tangledmass/internal/rootstore"
)

// Android's on-disk trust state (§2, footnote 2). The system image carries
// the read-only store; per-user additions and removals live under /data:
//
//	system/etc/security/cacerts/        the system store (hash.N PEM files)
//	data/misc/keychain/cacerts-added/   user-installed certificates
//	data/misc/keychain/cacerts-removed/ disabled certificates (any origin)
//
// SaveFS and LoadFS serialize a Device to and from this layout, so stores
// exported here are inspectable with the same tooling as a real device
// image (and `tangled audit` can point at the system directory).
const (
	systemCacertsPath  = "system/etc/security/cacerts"
	addedCacertsPath   = "data/misc/keychain/cacerts-added"
	removedCacertsPath = "data/misc/keychain/cacerts-removed"
	rootedMarkerPath   = "data/.rooted"
)

// SaveFS writes the device's trust state into dir using the Android layout.
// The directory is created; existing cacerts files in it are preserved
// (matching WriteCacertsDir semantics), so callers wanting a clean image
// should start from an empty directory.
func (d *Device) SaveFS(dir string) error {
	if err := rootstore.WriteCacertsDir(filepath.Join(dir, systemCacertsPath), d.system); err != nil {
		return fmt.Errorf("device: saving system store: %w", err)
	}
	if err := rootstore.WriteCacertsDir(filepath.Join(dir, addedCacertsPath), d.user); err != nil {
		return fmt.Errorf("device: saving user store: %w", err)
	}
	// Disabled certificates are stored as copies in cacerts-removed, which
	// is how Android marks them without touching the system image.
	removed := rootstore.New("removed")
	for id := range d.disabled {
		if c := d.system.Get(id); c != nil {
			removed.Add(c)
		} else if c := d.user.Get(id); c != nil {
			removed.Add(c)
		}
	}
	if err := rootstore.WriteCacertsDir(filepath.Join(dir, removedCacertsPath), removed); err != nil {
		return fmt.Errorf("device: saving removed store: %w", err)
	}
	if d.rooted {
		if err := os.WriteFile(filepath.Join(dir, rootedMarkerPath), []byte("su\n"), 0o644); err != nil {
			return fmt.Errorf("device: writing rooted marker: %w", err)
		}
	}
	return nil
}

// LoadFS reconstructs a Device from an Android-layout directory written by
// SaveFS (or assembled by hand). The profile is supplied by the caller —
// the filesystem does not carry it.
func LoadFS(dir string, profile Profile) (*Device, error) {
	system, err := rootstore.ReadCacertsDir(filepath.Join(dir, systemCacertsPath))
	if err != nil {
		return nil, fmt.Errorf("device: loading system store: %w", err)
	}
	d := New(profile, system, nil)

	addedDir := filepath.Join(dir, addedCacertsPath)
	if _, err := os.Stat(addedDir); err == nil {
		added, err := rootstore.ReadCacertsDir(addedDir)
		if err != nil {
			return nil, fmt.Errorf("device: loading user store: %w", err)
		}
		for _, c := range added.Certificates() {
			d.AddUserCert(c)
		}
	}

	removedDir := filepath.Join(dir, removedCacertsPath)
	if _, err := os.Stat(removedDir); err == nil {
		removed, err := rootstore.ReadCacertsDir(removedDir)
		if err != nil {
			return nil, fmt.Errorf("device: loading removed store: %w", err)
		}
		for _, c := range removed.Certificates() {
			d.DisableCert(corpus.IdentityOf(c))
		}
	}

	if _, err := os.Stat(filepath.Join(dir, rootedMarkerPath)); err == nil {
		d.Root()
	}
	return d, nil
}
