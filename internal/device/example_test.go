package device_test

import (
	"errors"
	"fmt"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/device"
)

// The §6 mechanics: the Freedom app cannot touch the system store until the
// device is rooted — after which it silently installs its own trust anchor.
func ExampleDevice_Install() {
	u := cauniverse.Default()
	d := device.New(device.Profile{
		Model: "Galaxy SIII", Manufacturer: "SAMSUNG", Version: "4.1",
	}, u.AOSP("4.1"), nil)

	freedom := device.FreedomApp(u.Root("CRAZY HOUSE").Issued.Cert)

	err := d.Install(freedom)
	fmt.Println("stock install blocked:", errors.Is(err, device.ErrNeedsRoot))

	d.Root()
	if err := d.Install(freedom); err != nil {
		fmt.Println("unexpected:", err)
		return
	}
	fmt.Println("store grew to:", d.SystemStore().Len())
	fmt.Println("trusts CRAZY HOUSE:", d.SystemStore().Contains(u.Root("CRAZY HOUSE").Issued.Cert))
	// Output:
	// stock install blocked: true
	// store grew to: 140
	// trusts CRAZY HOUSE: true
}
