// Package device simulates Android handsets at the level the paper studies:
// a system root store composed at firmware-build time (AOSP base plus
// manufacturer and operator additions), a user-managed store, the settings
// operations any user can perform (add / disable / delete, §2), and the
// rooting semantics that let apps tamper with the system store (§6).
package device

import (
	"crypto/x509"
	"errors"
	"fmt"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/rootstore"
)

// ErrReadOnlyStore is returned when a system-store mutation is attempted on
// a non-rooted device: "the root store by default only provides read access"
// (§2).
var ErrReadOnlyStore = errors.New("device: system root store is read-only (device not rooted)")

// ErrNeedsRoot is returned when an app requiring root permissions is
// installed on a non-rooted device.
var ErrNeedsRoot = errors.New("device: app requires root permissions")

// Profile describes a handset's static identity.
type Profile struct {
	Model        string
	Manufacturer string
	Operator     string
	Country      string
	Version      string // Android version, e.g. "4.4"
}

// Device is one simulated handset. Construct with New; the zero value is not
// usable.
type Device struct {
	Profile
	rooted   bool
	system   *rootstore.Store
	user     *rootstore.Store
	disabled map[certid.Identity]bool
	apps     []App
	policies []ValidationPolicy
	// channels records how each post-firmware certificate entered the
	// trust set (user settings vs rooted system-store write). Firmware
	// composition is never recorded: absence means ChannelFirmware.
	channels map[certid.Identity]Channel
}

// New builds a device whose system store is the AOSP base for its version
// plus the firmware additions its manufacturer and operator shipped.
// Firmware composition happens before first boot, so it bypasses the
// read-only rule.
func New(profile Profile, aospBase *rootstore.Store, firmwareAdditions []*x509.Certificate) *Device {
	d := &Device{
		Profile:  profile,
		system:   aospBase.Clone(fmt.Sprintf("%s %s system", profile.Manufacturer, profile.Model)),
		user:     rootstore.New(fmt.Sprintf("%s %s user", profile.Manufacturer, profile.Model)),
		disabled: make(map[certid.Identity]bool),
		channels: make(map[certid.Identity]Channel),
	}
	d.system.AddAll(firmwareAdditions)
	return d
}

// Restore rebuilds a device from captured stores — the dataset loader's
// constructor. The system store is adopted as-is (a serialized store is an
// exact snapshot of the device's system image, so no base-image clone or
// re-composition happens), user certificates arrive in their own store,
// and rooting is restored directly. A nil user store means none were
// installed.
func Restore(profile Profile, system, user *rootstore.Store, rooted bool) *Device {
	if user == nil {
		user = rootstore.NewIn(fmt.Sprintf("%s %s user", profile.Manufacturer, profile.Model), system.Corpus())
	}
	d := &Device{
		Profile:  profile,
		rooted:   rooted,
		system:   system,
		user:     user,
		disabled: make(map[certid.Identity]bool),
		channels: make(map[certid.Identity]Channel),
	}
	// User-store membership is serialized separately, so the user channel
	// survives a round trip; rooted system-store writes are not
	// distinguishable from firmware in a snapshot and stay unrecorded
	// (population.Handset.TamperChannel carries that bit instead).
	for _, id := range user.Identities() {
		d.channels[id] = ChannelUser
	}
	return d
}

// Rooted reports whether the device has been rooted.
func (d *Device) Rooted() bool { return d.rooted }

// Root roots the device (user-initiated rooting or a successful root
// exploit). From here on the system store is writable by apps.
func (d *Device) Root() { d.rooted = true }

// SystemStore returns the system root store (shared reference; treat as
// read-only and mutate through the Device methods, which enforce the
// platform rules).
func (d *Device) SystemStore() *rootstore.Store { return d.system }

// UserStore returns the user-added certificate store.
func (d *Device) UserStore() *rootstore.Store { return d.user }

// AddSystemCert installs a certificate into the system store. It fails with
// ErrReadOnlyStore unless the device is rooted.
func (d *Device) AddSystemCert(cert *x509.Certificate) error {
	if !d.rooted {
		return ErrReadOnlyStore
	}
	d.system.Add(cert)
	d.channels[corpus.IdentityOf(cert)] = ChannelRootInstall
	return nil
}

// RemoveSystemCert deletes a certificate from the system store. It fails
// with ErrReadOnlyStore unless the device is rooted.
func (d *Device) RemoveSystemCert(id certid.Identity) error {
	if !d.rooted {
		return ErrReadOnlyStore
	}
	d.system.Remove(id)
	return nil
}

// AddUserCert installs a certificate through system settings. Any user may
// do this on any device (§2) — no root required.
func (d *Device) AddUserCert(cert *x509.Certificate) {
	d.user.Add(cert)
	d.channels[corpus.IdentityOf(cert)] = ChannelUser
}

// DisableCert marks a certificate as distrusted through system settings.
// Disabling works on any device and affects the effective store without
// modifying the system store files.
func (d *Device) DisableCert(id certid.Identity) {
	d.disabled[id] = true
}

// EnableCert reverts DisableCert.
func (d *Device) EnableCert(id certid.Identity) {
	delete(d.disabled, id)
}

// Disabled reports whether the identity is currently disabled.
func (d *Device) Disabled(id certid.Identity) bool { return d.disabled[id] }

// EffectiveStore returns the trust set apps actually validate against:
// system plus user certificates, minus disabled entries. The result is a
// fresh store; mutating it does not affect the device. Membership is
// copied by handle when the stores share a corpus — no certificate is
// re-interned or re-fingerprinted — preserving the system-then-user
// insertion order.
func (d *Device) EffectiveStore() *rootstore.Store {
	name := fmt.Sprintf("%s %s effective", d.Manufacturer, d.Model)
	if len(d.disabled) == 0 {
		// Nothing is disabled on the vast majority of devices: clone the
		// system membership wholesale instead of re-inserting it
		// certificate by certificate.
		eff := d.system.Clone(name)
		if d.user.Len() > 0 {
			if d.user.Corpus() == eff.Corpus() {
				for _, id := range d.user.Identities() {
					eff.AddRef(d.user.Ref(id))
				}
			} else {
				for _, c := range d.user.Certificates() {
					eff.Add(c)
				}
			}
		}
		return eff
	}
	eff := rootstore.NewSized(name, d.system.Corpus(), d.system.Len()+d.user.Len())
	for _, s := range []*rootstore.Store{d.system, d.user} {
		if s.Corpus() == eff.Corpus() {
			for _, id := range s.Identities() {
				if !d.disabled[id] {
					eff.AddRef(s.Ref(id))
				}
			}
			continue
		}
		for _, c := range s.Certificates() {
			if !d.disabled[corpus.IdentityOf(c)] {
				eff.Add(c)
			}
		}
	}
	return eff
}

// App models an installed application and the store side effects it
// requests. The paper's running example is the Freedom app: requires root,
// demands egregious permissions, and silently installs the "CRAZY HOUSE"
// root (§6).
type App struct {
	Name         string
	Permissions  []string
	RequiresRoot bool
	// InstallRoots are certificates the app adds to the system store on
	// installation (possible only with root).
	InstallRoots []*x509.Certificate
	// RemoveRoots are system roots the app deletes on installation.
	RemoveRoots []certid.Identity
	// VPNInterception marks apps that request the VPN permission and tunnel
	// traffic through an interception proxy (§7) — they need no store
	// modification at all.
	VPNInterception bool
}

// Install installs the app, applying its store side effects. An app with
// root requirements fails on a non-rooted device with ErrNeedsRoot; nothing
// is applied in that case.
func (d *Device) Install(app App) error {
	if app.RequiresRoot && !d.rooted {
		return fmt.Errorf("installing %q: %w", app.Name, ErrNeedsRoot)
	}
	for _, c := range app.InstallRoots {
		if err := d.AddSystemCert(c); err != nil {
			return fmt.Errorf("installing %q: %w", app.Name, err)
		}
	}
	for _, id := range app.RemoveRoots {
		if err := d.RemoveSystemCert(id); err != nil {
			return fmt.Errorf("installing %q: %w", app.Name, err)
		}
	}
	d.apps = append(d.apps, app)
	return nil
}

// Apps returns the installed apps in installation order.
func (d *Device) Apps() []App {
	out := make([]App, len(d.apps))
	copy(out, d.apps)
	return out
}
