package device

import (
	"reflect"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/corpus"
)

func newVersionedDevice(t *testing.T, version string, rooted bool) *Device {
	t.Helper()
	u := cauniverse.Default()
	d := New(Profile{
		Model:        "Test Handset",
		Manufacturer: "ACME",
		Version:      version,
	}, u.AOSP(version), nil)
	if rooted {
		d.Root()
	}
	return d
}

func TestInstallCAAPIGate(t *testing.T) {
	crazy := extraCert(t, "CRAZY HOUSE")
	cases := []struct {
		version string
		rooted  bool
		want    Channel
	}{
		{"4.4", true, ChannelRootInstall}, // API 19, rooted: silent system write
		{"4.4", false, ChannelUser},       // no root, no system store
		{"4.1", true, ChannelUser},        // API 16: user store is still silent
		{"4.2", true, ChannelUser},
	}
	for _, tc := range cases {
		d := newVersionedDevice(t, tc.version, tc.rooted)
		got := d.InstallCA(crazy)
		if got != tc.want {
			t.Errorf("InstallCA on %s rooted=%v = %v, want %v", tc.version, tc.rooted, got, tc.want)
		}
		if got == ChannelRootInstall && !d.SystemStore().Contains(crazy) {
			t.Errorf("%s: system-channel install missing from system store", tc.version)
		}
		if got == ChannelUser && !d.UserStore().Contains(crazy) {
			t.Errorf("%s: user-channel install missing from user store", tc.version)
		}
		if ch := d.InstallChannel(corpus.IdentityOf(crazy)); ch != tc.want {
			t.Errorf("%s: recorded channel = %v, want %v", tc.version, ch, tc.want)
		}
	}
}

func TestChannelInstalledSortedAndFirmwareSilent(t *testing.T) {
	d := newVersionedDevice(t, "4.4", true)
	if len(d.ChannelInstalled()) != 0 {
		t.Fatal("firmware composition must not appear as channel installs")
	}
	a := extraCert(t, "CRAZY HOUSE")
	b := extraCert(t, "MIND OVERFLOW")
	d.InstallCA(a)
	d.AddUserCert(b)
	recs := d.ChannelInstalled()
	if len(recs) != 2 {
		t.Fatalf("%d channel records, want 2", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1].Identity, recs[i].Identity
		if prev.Subject > cur.Subject || (prev.Subject == cur.Subject && prev.Key > cur.Key) {
			t.Error("ChannelInstalled not sorted by subject then key")
		}
	}
	// A firmware root reports ChannelFirmware by absence.
	fw := d.SystemStore().Certificates()[0]
	if fw != a && d.InstallChannel(corpus.IdentityOf(fw)) != ChannelFirmware {
		t.Error("unrecorded certificate should report ChannelFirmware")
	}
}

func TestChannelStrings(t *testing.T) {
	for ch, want := range map[Channel]string{
		ChannelFirmware:    "firmware",
		ChannelUser:        "user",
		ChannelRootInstall: "system",
	} {
		if ch.String() != want {
			t.Errorf("%d.String() = %q, want %q", ch, ch.String(), want)
		}
	}
}

func TestPoliciesCopyAndOrder(t *testing.T) {
	d := newVersionedDevice(t, "4.4", false)
	if got := d.Policies(); len(got) != 0 {
		t.Fatalf("fresh device has %d policies", len(got))
	}
	in := []ValidationPolicy{
		{App: "stock-browser"},
		{App: "ad-sdk", AcceptAll: true},
		{App: "debug-build", BypassPins: true},
	}
	for _, p := range in {
		d.AddPolicy(p)
	}
	got := d.Policies()
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("Policies() = %+v, want installation order %+v", got, in)
	}
	// The returned slice is a copy: mutating it must not alter the device.
	got[0].AcceptAll = true
	if d.Policies()[0].AcceptAll {
		t.Error("Policies() returned the internal slice, not a copy")
	}
}

func TestStrict(t *testing.T) {
	if !(ValidationPolicy{App: "platform-default"}).Strict() {
		t.Error("zero flags should be strict")
	}
	for _, p := range []ValidationPolicy{
		{AcceptAll: true},
		{SkipHostname: true},
		{BypassPins: true},
	} {
		if p.Strict() {
			t.Errorf("%+v should not be strict", p)
		}
	}
}

func TestAPILevels(t *testing.T) {
	for version, want := range map[string]int{
		"4.4": 19, "4.3": 18, "4.2": 17, "4.1": 16, "4.0": 14, "2.3": 9, "1.5": 10,
	} {
		if got := APILevel(version); got != want {
			t.Errorf("APILevel(%q) = %d, want %d", version, got, want)
		}
	}
}
