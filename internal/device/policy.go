package device

import (
	"crypto/x509"
	"sort"

	"tangledmass/internal/certid"
)

// ValidationPolicy describes how one installed app validates TLS — the
// app-level failure modes the Okara and "Danger is My Middle Name" studies
// catalogue. The zero value is the platform default: full chain building,
// hostname verification, and pin enforcement. Each flag disables one layer
// of the decision; internal/trusteval applies them as recorded overrides so
// an interception success is attributable to the exact layer that let it
// through.
type ValidationPolicy struct {
	// App names the profile ("ad-sdk-webview", "accept-all-trust-manager").
	App string
	// AcceptAll marks a custom TrustManager whose checkServerTrusted is
	// empty: any chain "validates", trusted root or not.
	AcceptAll bool
	// SkipHostname marks an ALLOW_ALL_HOSTNAME_VERIFIER: the leaf is never
	// checked against the requested host.
	SkipHostname bool
	// BypassPins marks a build with pinning disabled (debug flag left on,
	// or a pin-bypass framework hook): pin mismatches are ignored.
	BypassPins bool
}

// Strict reports whether the policy performs every check — the platform
// default behaviour.
func (p ValidationPolicy) Strict() bool {
	return !p.AcceptAll && !p.SkipHostname && !p.BypassPins
}

// Channel identifies how a certificate entered a device's trust set.
type Channel int

const (
	// ChannelFirmware covers roots present since firmware build: the AOSP
	// base plus manufacturer/operator additions. Not recorded per
	// certificate — absence of a record means firmware.
	ChannelFirmware Channel = iota
	// ChannelUser covers certificates added to the user store through
	// system settings or a CA-installing app (§2: any user may).
	ChannelUser
	// ChannelRootInstall covers system-store writes after first boot —
	// possible only on rooted devices (§6: the Freedom app's CRAZY HOUSE
	// root).
	ChannelRootInstall
)

func (c Channel) String() string {
	switch c {
	case ChannelUser:
		return "user"
	case ChannelRootInstall:
		return "system"
	}
	return "firmware"
}

// APILevel maps an Android version string to its API level — the axis the
// install-channel gate and the attribution analysis split on. Unknown
// versions map to 10 (the 2.3 era floor of the paper's fleet).
func APILevel(version string) int {
	switch version {
	case "4.4":
		return 19
	case "4.3":
		return 18
	case "4.2":
		return 17
	case "4.1":
		return 16
	case "4.0":
		return 14
	case "2.3":
		return 9
	}
	return 10
}

// SystemInstallMinAPI is the API level from which CA-installing apps prefer
// the system store when they can get it: Android 4.4 (API 19) introduced
// the persistent "network may be monitored" notification for user-store
// CAs, so root-capable apps moved their certificates into the system store
// to stay silent. Below the gate the user store is silent and no app
// bothers with root. This mirrors the API-gated user-vs-system install
// split of the Android certificate-installer exemplar (where the gate sits
// at API 24 for the same reason: silent installs moved again).
const SystemInstallMinAPI = 19

// InstallCA installs a CA certificate the way a certificate-installing app
// would, choosing the channel by API level and root state: at or above
// SystemInstallMinAPI a rooted device takes the silent system-store path;
// everything else lands in the (pre-warning silent, post-warning warned)
// user store. The chosen channel is returned and recorded.
func (d *Device) InstallCA(cert *x509.Certificate) Channel {
	if APILevel(d.Version) >= SystemInstallMinAPI && d.rooted {
		// AddSystemCert cannot fail on a rooted device.
		_ = d.AddSystemCert(cert)
		return ChannelRootInstall
	}
	d.AddUserCert(cert)
	return ChannelUser
}

// InstallChannel reports how the identified certificate entered the trust
// set. Certificates never recorded (the firmware composition) report
// ChannelFirmware.
func (d *Device) InstallChannel(id certid.Identity) Channel {
	return d.channels[id]
}

// ChannelInstalled returns the identities added after firmware build,
// sorted by subject then key, with their channels — the store-tampering
// surface a MITM can exploit.
func (d *Device) ChannelInstalled() []ChannelRecord {
	out := make([]ChannelRecord, 0, len(d.channels))
	for id, ch := range d.channels {
		out = append(out, ChannelRecord{Identity: id, Channel: ch})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Identity.Subject != out[j].Identity.Subject {
			return out[i].Identity.Subject < out[j].Identity.Subject
		}
		return out[i].Identity.Key < out[j].Identity.Key
	})
	return out
}

// ChannelRecord pairs a post-firmware certificate with its install channel.
type ChannelRecord struct {
	Identity certid.Identity
	Channel  Channel
}

// AddPolicy records an installed app's validation policy. The device
// carries the policy set; sessions draw one profile per execution
// (internal/population) and the trust-evaluation engine applies it.
func (d *Device) AddPolicy(p ValidationPolicy) {
	d.policies = append(d.policies, p)
}

// Policies returns the recorded app validation policies in installation
// order.
func (d *Device) Policies() []ValidationPolicy {
	out := make([]ValidationPolicy, len(d.policies))
	copy(out, d.policies)
	return out
}
