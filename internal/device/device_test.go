package device

import (
	"crypto/x509"
	"errors"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
)

func newTestDevice(t *testing.T, additions []*x509.Certificate) *Device {
	t.Helper()
	u := cauniverse.Default()
	return New(Profile{
		Model:        "Nexus 7",
		Manufacturer: "ASUS",
		Operator:     "T-MOBILE",
		Country:      "US",
		Version:      "4.4",
	}, u.AOSP("4.4"), additions)
}

func extraCert(t *testing.T, name string) *x509.Certificate {
	t.Helper()
	r := cauniverse.Default().Root(name)
	if r == nil {
		t.Fatalf("no such catalog root %q", name)
	}
	return r.Issued.Cert
}

func TestFirmwareComposition(t *testing.T) {
	adds := []*x509.Certificate{
		extraCert(t, "Motorola FOTA Root CA"),
		extraCert(t, "Motorola SUPL Server Root CA"),
	}
	d := newTestDevice(t, adds)
	if d.SystemStore().Len() != 152 {
		t.Errorf("system store = %d, want 150+2", d.SystemStore().Len())
	}
	for _, c := range adds {
		if !d.SystemStore().Contains(c) {
			t.Error("firmware addition missing from system store")
		}
	}
	// The base store was cloned, not shared.
	if cauniverse.Default().AOSP("4.4").Len() != 150 {
		t.Fatal("firmware composition mutated the AOSP base store")
	}
}

func TestSystemStoreReadOnlyUnlessRooted(t *testing.T) {
	d := newTestDevice(t, nil)
	crazy := extraCert(t, "CRAZY HOUSE")
	if err := d.AddSystemCert(crazy); !errors.Is(err, ErrReadOnlyStore) {
		t.Errorf("AddSystemCert on non-rooted = %v, want ErrReadOnlyStore", err)
	}
	someID := certid.IdentityOf(d.SystemStore().Certificates()[0])
	if err := d.RemoveSystemCert(someID); !errors.Is(err, ErrReadOnlyStore) {
		t.Errorf("RemoveSystemCert on non-rooted = %v, want ErrReadOnlyStore", err)
	}

	d.Root()
	if !d.Rooted() {
		t.Fatal("Root() did not root the device")
	}
	if err := d.AddSystemCert(crazy); err != nil {
		t.Errorf("AddSystemCert on rooted: %v", err)
	}
	if !d.SystemStore().Contains(crazy) {
		t.Error("cert not added after rooting")
	}
	if err := d.RemoveSystemCert(someID); err != nil {
		t.Errorf("RemoveSystemCert on rooted: %v", err)
	}
	if d.SystemStore().ContainsIdentity(someID) {
		t.Error("cert not removed after rooting")
	}
}

func TestUserStoreAlwaysWritable(t *testing.T) {
	d := newTestDevice(t, nil)
	vpn := extraCert(t, "USER_X")
	d.AddUserCert(vpn)
	if !d.UserStore().Contains(vpn) {
		t.Error("user cert missing from user store")
	}
	if d.SystemStore().Contains(vpn) {
		t.Error("user cert leaked into system store")
	}
	if !d.EffectiveStore().Contains(vpn) {
		t.Error("user cert missing from effective store")
	}
}

func TestDisableEnable(t *testing.T) {
	d := newTestDevice(t, nil)
	target := d.SystemStore().Certificates()[3]
	id := certid.IdentityOf(target)
	d.DisableCert(id)
	if !d.Disabled(id) {
		t.Error("Disabled should report true")
	}
	if d.EffectiveStore().ContainsIdentity(id) {
		t.Error("disabled cert still in effective store")
	}
	if !d.SystemStore().ContainsIdentity(id) {
		t.Error("disable must not delete from system store")
	}
	d.EnableCert(id)
	if !d.EffectiveStore().ContainsIdentity(id) {
		t.Error("re-enabled cert missing from effective store")
	}
}

func TestEffectiveStoreIsACopy(t *testing.T) {
	d := newTestDevice(t, nil)
	eff := d.EffectiveStore()
	eff.Add(extraCert(t, "MIND OVERFLOW"))
	if d.SystemStore().Contains(extraCert(t, "MIND OVERFLOW")) {
		t.Error("mutating effective store affected system store")
	}
}

func TestFreedomAppRequiresRoot(t *testing.T) {
	d := newTestDevice(t, nil)
	freedom := App{
		Name:         "Freedom",
		RequiresRoot: true,
		Permissions:  []string{"ACCESS_GOOGLE_ACCOUNTS", "READ_PHONE_STATE", "WRITE_SETTINGS"},
		InstallRoots: []*x509.Certificate{extraCert(t, "CRAZY HOUSE")},
	}
	if err := d.Install(freedom); !errors.Is(err, ErrNeedsRoot) {
		t.Errorf("install on non-rooted = %v, want ErrNeedsRoot", err)
	}
	if len(d.Apps()) != 0 {
		t.Error("failed install should not register the app")
	}
	if d.SystemStore().Contains(extraCert(t, "CRAZY HOUSE")) {
		t.Error("failed install should not touch the store")
	}

	d.Root()
	if err := d.Install(freedom); err != nil {
		t.Fatalf("install on rooted: %v", err)
	}
	if !d.SystemStore().Contains(extraCert(t, "CRAZY HOUSE")) {
		t.Error("Freedom should have installed CRAZY HOUSE into the system store")
	}
	if len(d.Apps()) != 1 || d.Apps()[0].Name != "Freedom" {
		t.Error("app not registered")
	}
}

func TestAppRemovingRoots(t *testing.T) {
	d := newTestDevice(t, nil)
	d.Root()
	victim := certid.IdentityOf(d.SystemStore().Certificates()[0])
	evil := App{Name: "StorePruner", RequiresRoot: true, RemoveRoots: []certid.Identity{victim}}
	if err := d.Install(evil); err != nil {
		t.Fatal(err)
	}
	if d.SystemStore().ContainsIdentity(victim) {
		t.Error("app should have removed the root")
	}
}

func TestVPNAppNeedsNoRoot(t *testing.T) {
	d := newTestDevice(t, nil)
	proxyApp := App{
		Name:            "ConsumerInput Mobile",
		Permissions:     []string{"CHANGE_NETWORK_STATE", "BIND_VPN_SERVICE"},
		VPNInterception: true,
	}
	if err := d.Install(proxyApp); err != nil {
		t.Fatalf("VPN app should install without root: %v", err)
	}
	before := d.SystemStore().Len()
	if d.SystemStore().Len() != before {
		t.Error("VPN interception app must not modify the store")
	}
}

func TestEffectiveStoreUnion(t *testing.T) {
	adds := []*x509.Certificate{extraCert(t, "DoD CLASS 3 Root CA")}
	d := newTestDevice(t, adds)
	d.AddUserCert(extraCert(t, "USER_X"))
	eff := d.EffectiveStore()
	want := d.SystemStore().Len() + d.UserStore().Len()
	if eff.Len() != want {
		t.Errorf("effective = %d, want %d", eff.Len(), want)
	}
	// Disabling one system and one user cert shrinks it by two.
	d.DisableCert(certid.IdentityOf(adds[0]))
	d.DisableCert(certid.IdentityOf(extraCert(t, "USER_X")))
	if got := d.EffectiveStore().Len(); got != want-2 {
		t.Errorf("effective after disable = %d, want %d", got, want-2)
	}
}

func TestDeviceProfile(t *testing.T) {
	d := newTestDevice(t, nil)
	if d.Manufacturer != "ASUS" || d.Model != "Nexus 7" || d.Version != "4.4" {
		t.Errorf("profile = %+v", d.Profile)
	}
}

func TestAppCatalog(t *testing.T) {
	crazy := extraCert(t, "CRAZY HOUSE")
	freedom := FreedomApp(crazy)
	if !freedom.RequiresRoot || len(freedom.InstallRoots) != 1 {
		t.Errorf("Freedom app = %+v", freedom)
	}
	if over := PermissionAudit(freedom); len(over) == 0 {
		t.Error("Freedom should trip the permission audit")
	}
	apps := MarketingResearchApps()
	if len(apps) != 4 {
		t.Fatalf("marketing apps = %d, want 4 (§7)", len(apps))
	}
	for _, a := range apps {
		if a.RequiresRoot {
			t.Errorf("%s must not require root (§7: no store modification)", a.Name)
		}
		if !a.VPNInterception {
			t.Errorf("%s should be a VPN interception client", a.Name)
		}
		over := PermissionAudit(a)
		if len(over) < 3 {
			t.Errorf("%s overreaching permissions = %v, want several", a.Name, over)
		}
	}
	// Installing a marketing app on a stock device succeeds and leaves the
	// store untouched.
	d := newTestDevice(t, nil)
	before := d.SystemStore().Len()
	if err := d.Install(apps[0]); err != nil {
		t.Fatal(err)
	}
	if d.SystemStore().Len() != before {
		t.Error("marketing app modified the store")
	}
}
