package device

import "crypto/x509"

// The app catalog reproduces the concrete applications the paper names,
// with the permission sets it reports.

// FreedomApp is the §6 case study: an in-app-purchase bypass requiring root
// that silently installs the "CRAZY HOUSE" root into the system store.
// The caller supplies the root certificate (from the CA universe).
func FreedomApp(crazyHouse *x509.Certificate) App {
	return App{
		Name:         "Freedom",
		RequiresRoot: true,
		Permissions: []string{
			"GET_ACCOUNTS",     // "accessing the Google accounts set up on the device"
			"READ_PHONE_STATE", // "reading phone status and identity"
			"WRITE_SETTINGS",   // "modifying system settings"
			"WRITE_SECURE_SETTINGS",
		},
		InstallRoots: []*x509.Certificate{crazyHouse},
	}
}

// realityMinePermissions is the §7 permission set: network reconfiguration,
// VPN-based traffic interception, and the broad data access the paper
// enumerates ("protected storage and the ability to read contacts,
// calendar, location, text messages, device ID, call information, Web
// bookmarks and history, and sensitive log data").
var realityMinePermissions = []string{
	"CHANGE_NETWORK_STATE",
	"BIND_VPN_SERVICE",
	"WRITE_EXTERNAL_STORAGE",
	"READ_CONTACTS",
	"READ_CALENDAR",
	"ACCESS_FINE_LOCATION",
	"READ_SMS",
	"READ_PHONE_STATE",
	"READ_CALL_LOG",
	"READ_HISTORY_BOOKMARKS",
	"READ_LOGS",
}

// MarketingResearchApps are the four §7 apps published by the marketing
// provider (ConsumerInput Mobile, USA TouchPoints, MediaTrack, AnalyzeMe):
// VPN-interception clients that require no root-store modification at all.
func MarketingResearchApps() []App {
	names := []string{
		"ConsumerInput Mobile",
		"USA TouchPoints",
		"MediaTrack",
		"AnalyzeMe",
	}
	apps := make([]App, len(names))
	for i, n := range names {
		perms := make([]string, len(realityMinePermissions))
		copy(perms, realityMinePermissions)
		apps[i] = App{
			Name:            n,
			Permissions:     perms,
			VPNInterception: true,
		}
	}
	return apps
}

// OverreachingPermissions lists the permissions §8 flags as masking
// malicious intent when requested together ("seemingly helpful permission
// requests such as traffic interception to enable VPNs").
var OverreachingPermissions = map[string]bool{
	"BIND_VPN_SERVICE":       true,
	"READ_LOGS":              true,
	"WRITE_SECURE_SETTINGS":  true,
	"READ_SMS":               true,
	"READ_HISTORY_BOOKMARKS": true,
}

// PermissionAudit counts an app's overreaching permissions — the §8 "users
// must exercise prudence" signal surfaced mechanically.
func PermissionAudit(app App) (overreaching []string) {
	for _, p := range app.Permissions {
		if OverreachingPermissions[p] {
			overreaching = append(overreaching, p)
		}
	}
	return overreaching
}
