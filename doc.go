// Package tangledmass reproduces "A Tangled Mass: The Android Root
// Certificate Stores" (Vallina-Rodriguez et al., CoNEXT 2014): a root-store
// audit toolkit plus every substrate the paper's measurement study depends
// on — a synthetic CA universe, an Android device/firmware simulator, a
// Netalyzr-style measurement client, an ICSI-Notary-style passive
// certificate database, and a TLS interception proxy.
//
// The library lives under internal/; the binaries under cmd/ (tangled,
// paperfigs) and the runnable examples under examples/ are the public
// surface. bench_test.go regenerates every table and figure of the paper as
// a benchmark. See README.md, DESIGN.md and EXPERIMENTS.md.
package tangledmass
