package tangledmass

// One benchmark per table and figure of the paper, plus the ablations
// called out in DESIGN.md. Each benchmark regenerates its artifact from the
// shared fixtures; reported time is the cost of the analysis, with substrate
// construction amortized in the fixture.
//
//	go test -bench=. -benchmem
//
// Scale knobs: the fixtures use a 0.25-scale fleet (≈4,000 sessions) and a
// 4,000-leaf Notary so a full bench sweep stays in seconds; cmd/paperfigs
// runs the same analyses at paper scale.

import (
	"context"
	"crypto/x509"
	"sync"
	"testing"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/device"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/stats"
	"tangledmass/internal/tlsnet"
)

type fixtures struct {
	universe *cauniverse.Universe
	pop      *population.Population
	world    *tlsnet.World
	notary   *notary.Notary
}

var (
	fixOnce sync.Once
	fix     *fixtures
	fixErr  error
)

func benchFixtures(b *testing.B) *fixtures {
	b.Helper()
	fixOnce.Do(func() {
		u := cauniverse.Default()
		pop, err := population.Generate(population.Config{Seed: 1, Universe: u, SessionScale: 0.25})
		if err != nil {
			fixErr = err
			return
		}
		world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 1, Universe: u, NumLeaves: 4000})
		if err != nil {
			fixErr = err
			return
		}
		n := notary.New(certgen.Epoch)
		tlsnet.Feed(world, n)
		fix = &fixtures{universe: u, pop: pop, world: world, notary: n}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// BenchmarkTable1StoreSizes builds the full CA universe and reads the store
// sizes of Table 1.
func BenchmarkTable1StoreSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := cauniverse.New(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rows := analysis.Table1(u)
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2TopDevices ranks devices and manufacturers by sessions.
func BenchmarkTable2TopDevices(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devices, manufacturers := analysis.Table2(f.pop, 5)
		if len(devices) != 5 || len(manufacturers) != 5 {
			b.Fatal("wrong top-k")
		}
	}
}

// BenchmarkTable3ValidationCounts runs the per-store validation totals over
// the Notary (Mozilla, iOS7, AOSP 4.1–4.4 in one crypto pass).
func BenchmarkTable3ValidationCounts(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table3(f.notary, f.universe)
		if rows[0].Validated == 0 {
			b.Fatal("no validations")
		}
	}
}

// BenchmarkTable4CategoryValidation computes per-category zero-validation
// shares over the paper's eight categories.
func BenchmarkTable4CategoryValidation(b *testing.B) {
	f := benchFixtures(b)
	cats := analysis.Figure3Categories(f.universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.ValidateCategories(f.notary, cats)
		if len(rows) != 8 {
			b.Fatal("wrong category count")
		}
	}
}

// BenchmarkTable5RootedExclusives detects roots present only on rooted
// handsets across the fleet.
func BenchmarkTable5RootedExclusives(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table5(f.pop)
		if len(rows) == 0 {
			b.Fatal("no exclusives found")
		}
	}
}

// BenchmarkTable6Interception runs a full §7 reproduction per iteration:
// origin TLS server, interception proxy, one Netalyzr session through it,
// and the detector split.
func BenchmarkTable6Interception(b *testing.B) {
	f := benchFixtures(b)
	sites, err := tlsnet.NewSites(f.world)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	reference := rootstore.Union("reference", f.universe.AOSP("4.4"), f.universe.Mozilla(), f.universe.IOS7())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proxy, err := mitm.NewProxy(f.universe.InterceptionRoot().Issued, f.universe.Generator(),
			tlsnet.DirectDialer{Server: srv}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
		if err != nil {
			b.Fatal(err)
		}
		dev := device.New(device.Profile{Model: "Nexus 7", Manufacturer: "ASUS", Version: "4.4"},
			f.universe.AOSP("4.4"), nil)
		client, err := netalyzr.New(dev, proxy, netalyzr.WithValidationTime(certgen.Epoch))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := client.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		det := &mitm.Detector{Reference: reference, At: certgen.Epoch}
		intercepted, clean := det.InspectReport(rep)
		if len(intercepted) != len(tlsnet.InterceptedDomains) || len(clean) != len(tlsnet.WhitelistedDomains) {
			b.Fatalf("table 6 split wrong: %d/%d", len(intercepted), len(clean))
		}
	}
}

// BenchmarkFigure1Scatter aggregates the fleet into the Figure 1 scatter.
func BenchmarkFigure1Scatter(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := analysis.Figure1(f.pop)
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure2Attribution builds the vendor/operator certificate
// attribution matrix with Notary presence classes.
func BenchmarkFigure2Attribution(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := analysis.Figure2(f.pop, f.notary, 10)
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFigure3ECDF computes the per-root validation-count ECDFs for all
// eight categories.
func BenchmarkFigure3ECDF(b *testing.B) {
	f := benchFixtures(b)
	cats := analysis.Figure3Categories(f.universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.ValidateCategories(f.notary, cats)
		for _, r := range rows {
			if r.ECDF.Len() != r.TotalRoots {
				b.Fatal("ECDF sample size mismatch")
			}
		}
	}
}

// BenchmarkSection5Headlines computes the §5 prose numbers.
func BenchmarkSection5Headlines(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := analysis.ComputeHeadlines(f.pop)
		if h.TotalSessions == 0 {
			b.Fatal("empty headlines")
		}
	}
}

// BenchmarkSection6Rooted computes the rooted-handset shares.
func BenchmarkSection6Rooted(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.pop.RootedSessionFraction() <= 0 {
			b.Fatal("no rooted sessions")
		}
	}
}

// BenchmarkSection7MITMThroughput measures intercepted TLS sessions per
// second through the proxy (leaf cache warm).
func BenchmarkSection7MITMThroughput(b *testing.B) {
	f := benchFixtures(b)
	sites, err := tlsnet.NewSites(f.world)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	proxy, err := mitm.NewProxy(f.universe.InterceptionRoot().Issued, f.universe.Generator(),
		tlsnet.DirectDialer{Server: srv}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(device.Profile{Model: "Nexus 7", Manufacturer: "ASUS", Version: "4.4"},
		f.universe.AOSP("4.4"), nil)
	client, err := netalyzr.New(dev, proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{{Host: "gmail.com", Port: 443}}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := client.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Probes[0].Err != nil {
			b.Fatal(rep.Probes[0].Err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationIdentityEquivalence measures store intersection under the
// paper's subject+key equivalence...
func BenchmarkAblationIdentityEquivalence(b *testing.B) {
	f := benchFixtures(b)
	a, m := f.universe.AOSP("4.4"), f.universe.Mozilla()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rootstore.Intersect("i", a, m).Len() != 130 {
			b.Fatal("wrong overlap")
		}
	}
}

// ...while BenchmarkAblationIdentityByte measures byte-level matching, which
// is cheaper but undercounts shared roots (117 vs 130).
func BenchmarkAblationIdentityByte(b *testing.B) {
	f := benchFixtures(b)
	a, m := f.universe.AOSP("4.4"), f.universe.Mozilla()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rootstore.ByteIntersectCount(a, m) != 117 {
			b.Fatal("wrong overlap")
		}
	}
}

// ablationChainSetup builds a pool and probe leaves for the chain ablation.
func ablationChainSetup(b *testing.B) (roots, inters, leaves []*x509.Certificate) {
	b.Helper()
	f := benchFixtures(b)
	u := f.universe
	roots = u.AOSP("4.4").Certificates()
	count := 0
	for _, l := range f.world.Leaves() {
		if l.Expired {
			continue
		}
		leaves = append(leaves, l.Chain[0])
		if len(l.Chain) == 3 {
			inters = append(inters, l.Chain[1])
		}
		count++
		if count == 64 {
			break
		}
	}
	return roots, inters, leaves
}

// BenchmarkAblationChainIndexed validates 64 leaves with the subject-indexed
// path builder...
func BenchmarkAblationChainIndexed(b *testing.B) {
	roots, inters, leaves := ablationChainSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := chain.NewVerifier(roots, inters, certgen.Epoch)
		for _, l := range leaves {
			v.Validates(l)
		}
	}
}

// ...while BenchmarkAblationChainNaive uses the linear-scan baseline.
func BenchmarkAblationChainNaive(b *testing.B) {
	roots, inters, leaves := ablationChainSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := chain.NewNaiveVerifier(roots, inters, certgen.Epoch)
		for _, l := range leaves {
			v.Validates(l)
		}
	}
}

// BenchmarkAblationNotaryIngest measures observation throughput of the
// Notary's dedup pipeline.
func BenchmarkAblationNotaryIngest(b *testing.B) {
	f := benchFixtures(b)
	leaves := f.world.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := notary.New(certgen.Epoch)
		for _, l := range leaves {
			n.Observe(notary.Observation{Chain: l.Chain, Port: l.Port})
		}
		if n.NumUnique() == 0 {
			b.Fatal("empty notary")
		}
	}
}

// BenchmarkAblationMITMCacheHit forges leaves with the cache enabled...
func BenchmarkAblationMITMCacheHit(b *testing.B) {
	benchMITMForge(b, false)
}

// ...and BenchmarkAblationMITMCacheMiss with per-connection re-forging.
func BenchmarkAblationMITMCacheMiss(b *testing.B) {
	benchMITMForge(b, true)
}

func benchMITMForge(b *testing.B, disableCache bool) {
	f := benchFixtures(b)
	sites, err := tlsnet.NewSites(f.world)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	mitmOpts := []mitm.Option{}
	if disableCache {
		mitmOpts = append(mitmOpts, mitm.WithoutLeafCache())
	}
	proxy, err := mitm.NewProxy(f.universe.InterceptionRoot().Issued, f.universe.Generator(),
		tlsnet.DirectDialer{Server: srv}, mitmOpts...)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(device.Profile{Model: "Nexus 7", Manufacturer: "ASUS", Version: "4.4"},
		f.universe.AOSP("4.4"), nil)
	client, err := netalyzr.New(dev, proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{{Host: "www.chase.com", Port: 443}}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := client.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Probes[0].Err != nil {
			b.Fatal(rep.Probes[0].Err)
		}
	}
}

// BenchmarkPopulationGenerate measures fleet synthesis at 10% scale.
func BenchmarkPopulationGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := population.Generate(population.Config{Seed: int64(i + 1), SessionScale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if p.TotalSessions() == 0 {
			b.Fatal("empty population")
		}
	}
}

// BenchmarkSubjectHash measures the Android cacerts file-name hash.
func BenchmarkSubjectHash(b *testing.B) {
	f := benchFixtures(b)
	certs := f.universe.AOSP("4.4").Certificates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		certid.SubjectHash32(certs[i%len(certs)])
	}
}

// BenchmarkZipfSample measures the popularity sampler feeding the Notary.
func BenchmarkZipfSample(b *testing.B) {
	z, err := stats.NewZipf(200, 1.1, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	src := stats.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(src)
	}
}
