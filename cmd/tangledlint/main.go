// Command tangledlint runs the repo-aware static-analysis suite over the
// module. It is one of the three correctness gates verify.sh chains (with
// go vet and go test -race): the paper's identity, determinism, locking,
// and error-handling invariants are enforced here, mechanically, on every
// build.
//
// Usage:
//
//	tangledlint [./... | <module-dir>]
//
// With no argument or "./...", the module containing the current directory
// is analyzed. Findings print as "file:line: [rule] message"; the exit code
// is 1 when there are findings, 2 on usage or load errors, 0 when clean.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"tangledmass/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tangledlint: ")
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the driver and returns the number of findings printed.
func run(args []string, out io.Writer) (int, error) {
	root := "."
	switch len(args) {
	case 0:
		// module at the current directory
	case 1:
		if args[0] != "./..." {
			root = args[0]
		}
	default:
		return 0, fmt.Errorf("usage: tangledlint [./... | <module-dir>]")
	}
	root, err := findModuleRoot(root)
	if err != nil {
		return 0, err
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		return 0, err
	}
	findings := lint.Run(m, lint.Analyzers())
	for _, f := range findings {
		if _, err := fmt.Fprintln(out, relativize(f).String()); err != nil {
			return 0, fmt.Errorf("writing findings: %w", err)
		}
	}
	return len(findings), nil
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// relativize rewrites the finding's file path relative to the working
// directory when possible, matching compiler diagnostics.
func relativize(f lint.Finding) lint.Finding {
	wd, err := os.Getwd()
	if err != nil {
		return f
	}
	rel, err := filepath.Rel(wd, f.Pos.Filename)
	if err != nil || len(rel) >= len(f.Pos.Filename) {
		return f
	}
	f.Pos.Filename = rel
	return f
}
