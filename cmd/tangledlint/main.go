// Command tangledlint runs the repo-aware static-analysis suite over the
// module. It is one of the three correctness gates verify.sh chains (with
// go vet and go test -race): the paper's identity, determinism, locking,
// and error-handling invariants are enforced here, mechanically, on every
// build.
//
// Usage:
//
//	tangledlint [flags] [./... | <module-dir>]
//
// With no argument or "./...", the module containing the current directory
// is analyzed. Findings print as "file:line: [rule] message" with paths
// relative to the module root; the exit code is 1 when there are findings,
// 2 on usage or load errors, 0 when clean.
//
// Flags:
//
//	-format text|json   output format; json emits one JSON object per
//	                    finding, one per line, stable across machines and
//	                    worker counts (CI problem matchers key off it)
//	-workers N          lint worker count (default GOMAXPROCS); output is
//	                    byte-identical at any value
//	-baseline FILE      suppress findings listed in FILE (text format, one
//	                    finding per line; # comments and blanks ignored) —
//	                    the incremental-adoption mechanism for new rules
//	-write-baseline FILE
//	                    write the current findings to FILE as a baseline
//	                    and exit 0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tangledmass/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tangledlint: ")
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the driver and returns the number of findings printed.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("tangledlint", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	format := fs.String("format", "text", "output format: text or json")
	workers := fs.Int("workers", 0, "lint worker count (<1 means GOMAXPROCS)")
	baselinePath := fs.String("baseline", "", "baseline file of findings to suppress")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit clean")
	usage := fmt.Errorf("usage: tangledlint [-format text|json] [-workers N] [-baseline FILE] [-write-baseline FILE] [./... | <module-dir>]")
	if err := fs.Parse(args); err != nil {
		return 0, usage
	}
	if *format != "text" && *format != "json" {
		return 0, usage
	}

	root := "."
	switch fs.NArg() {
	case 0:
		// module at the current directory
	case 1:
		if fs.Arg(0) != "./..." {
			root = fs.Arg(0)
		}
	default:
		return 0, usage
	}
	root, err := findModuleRoot(root)
	if err != nil {
		return 0, err
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		return 0, err
	}
	findings := lint.Run(m, lint.Analyzers(), lint.WithWorkers(*workers))

	if *baselinePath != "" {
		known, err := readBaseline(*baselinePath)
		if err != nil {
			return 0, err
		}
		kept := findings[:0]
		for _, f := range findings {
			if !known[f.String()] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, findings); err != nil {
			return 0, err
		}
		return 0, nil
	}

	w := bufio.NewWriter(out)
	for _, f := range findings {
		var err error
		if *format == "json" {
			err = writeJSON(w, f)
		} else {
			_, err = fmt.Fprintln(w, f.String())
		}
		if err != nil {
			return 0, fmt.Errorf("writing findings: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return 0, fmt.Errorf("writing findings: %w", err)
	}
	return len(findings), nil
}

// jsonFinding is the machine-readable rendering of one finding. Field
// order is fixed by the struct, so the bytes are stable for a given
// finding list regardless of worker count or platform.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// writeJSON emits one finding as a single JSON line.
func writeJSON(w io.Writer, f lint.Finding) error {
	data, err := json.Marshal(jsonFinding{
		File: f.Pos.Filename,
		Line: f.Pos.Line,
		Col:  f.Pos.Column,
		Rule: f.Rule,
		Msg:  f.Msg,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// readBaseline loads a baseline file: one rendered finding per line, with
// blank lines and # comments skipped.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	known := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		known[line] = true
	}
	return known, nil
}

// writeBaselineFile persists the findings as a baseline. The header makes
// the file self-describing; an empty findings list writes a header-only
// baseline, the steady state the repo is held to.
func writeBaselineFile(path string, findings []lint.Finding) error {
	var b strings.Builder
	b.WriteString("# tangledlint baseline: findings accepted for incremental adoption.\n")
	b.WriteString("# Regenerate with `make lint-baseline`. Keep this empty: fix findings\n")
	b.WriteString("# or suppress them inline with a reasoned //lint:ignore instead.\n")
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("writing baseline: %w", err)
	}
	return nil
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}
