package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFixtureModule points the driver at the analyzer fixture module and
// checks the reporting contract: one "file:line: [rule] message" line per
// finding and a positive count.
func TestRunFixtureModule(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	n, err := run([]string{fixture}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n == 0 {
		t.Fatal("fixture module produced no findings")
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("printed %d lines, reported %d findings", len(lines), n)
	}
	for _, l := range lines {
		rest := l[strings.IndexByte(l, ':')+1:]
		if !strings.Contains(rest, ": [") || !strings.Contains(rest, "] ") {
			t.Errorf("malformed finding line: %q", l)
		}
	}
}

// TestRunSelf runs the driver over its own module, which must stay clean:
// the lint gate in verify.sh depends on it.
func TestRunSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module is slow")
	}
	var out strings.Builder
	n, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("module is not lint-clean:\n%s", out.String())
	}
}

// TestRunUsage rejects extra arguments.
func TestRunUsage(t *testing.T) {
	if _, err := run([]string{"a", "b"}, &strings.Builder{}); err == nil {
		t.Fatal("want usage error for two arguments")
	}
}

// TestRunNoModule reports a load error for a directory outside any module.
func TestRunNoModule(t *testing.T) {
	if _, err := run([]string{t.TempDir()}, &strings.Builder{}); err == nil {
		t.Fatal("want error for directory without go.mod")
	}
}
