package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir is the analyzer fixture module every driver test points at.
func fixtureDir() string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src")
}

// TestRunFixtureModule points the driver at the analyzer fixture module and
// checks the reporting contract: one "file:line: [rule] message" line per
// finding and a positive count.
func TestRunFixtureModule(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{fixtureDir()}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n == 0 {
		t.Fatal("fixture module produced no findings")
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("printed %d lines, reported %d findings", len(lines), n)
	}
	for _, l := range lines {
		rest := l[strings.IndexByte(l, ':')+1:]
		if !strings.Contains(rest, ": [") || !strings.Contains(rest, "] ") {
			t.Errorf("malformed finding line: %q", l)
		}
	}
}

// TestRunSelf runs the driver over its own module, which must stay clean:
// the lint gate in verify.sh depends on it.
func TestRunSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module is slow")
	}
	var out strings.Builder
	n, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("module is not lint-clean:\n%s", out.String())
	}
}

// TestRunUsage rejects extra arguments.
func TestRunUsage(t *testing.T) {
	if _, err := run([]string{"a", "b"}, &strings.Builder{}); err == nil {
		t.Fatal("want usage error for two arguments")
	}
}

// TestRunNoModule reports a load error for a directory outside any module.
func TestRunNoModule(t *testing.T) {
	if _, err := run([]string{t.TempDir()}, &strings.Builder{}); err == nil {
		t.Fatal("want error for directory without go.mod")
	}
}

// TestJSONByteIdentityAcrossWorkers is the acceptance gate for the
// parallelized walk: -format=json output must be byte-identical at 1 and 8
// workers — the tool obeys the determinism invariant it checks.
func TestJSONByteIdentityAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		n, err := run([]string{"-format", "json", "-workers", workers, fixtureDir()}, &out)
		if err != nil {
			t.Fatalf("run(workers=%s): %v", workers, err)
		}
		if n == 0 {
			t.Fatalf("run(workers=%s): no findings from fixture module", workers)
		}
		return out.String()
	}
	one, eight := render("1"), render("8")
	if one != eight {
		t.Errorf("JSON output differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", one, eight)
	}
}

// TestJSONFormat checks the machine-readable contract: one JSON object per
// line with the fields the CI problem matcher keys off, and relative
// slash-separated paths.
func TestJSONFormat(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-format", "json", fixtureDir()}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		var f struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON finding: %q: %v", line, err)
		}
		if f.File == "" || f.Line <= 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("incomplete finding: %q", line)
		}
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file not relative slash path: %q", f.File)
		}
	}
}

// TestBaselineRoundTrip writes a baseline from the fixture's findings and
// re-runs against it: every finding must be filtered, exit count zero —
// the incremental-adoption path for a new rule.
func TestBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.txt")
	if _, err := run([]string{"-write-baseline", baseline, fixtureDir()}, &strings.Builder{}); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("reading baseline back: %v", err)
	}
	if !strings.Contains(string(data), "[detsink]") {
		t.Fatal("baseline lacks the fixture's detsink findings")
	}
	var out strings.Builder
	n, err := run([]string{"-baseline", baseline, fixtureDir()}, &out)
	if err != nil {
		t.Fatalf("run with baseline: %v", err)
	}
	if n != 0 {
		t.Errorf("findings survived their own baseline:\n%s", out.String())
	}
}

// TestBadFormat rejects unknown -format values with a usage error.
func TestBadFormat(t *testing.T) {
	if _, err := run([]string{"-format", "xml", fixtureDir()}, &strings.Builder{}); err == nil {
		t.Fatal("want usage error for -format xml")
	}
}
