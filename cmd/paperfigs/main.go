// Command paperfigs regenerates every table and figure of "A Tangled Mass:
// The Android Root Certificate Stores" (CoNEXT 2014) from the synthetic
// substrates, printing each in the paper's structure.
//
// Usage:
//
//	paperfigs [-seed N] [-scale F] [-leaves N] [-only table1,figure3,...]
//	          [-json artifacts.json] [-csvdir DIR]
//
// -scale scales the Netalyzr session quota (1.0 = the paper's 15,970
// sessions); -leaves sizes the Notary's simulated TLS internet; -json and
// -csvdir additionally emit machine-readable artifacts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/report"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	var (
		seed   = flag.Int64("seed", 1, "seed for all generators")
		scale  = flag.Float64("scale", 1.0, "session-quota scale (1.0 = 15,970 sessions)")
		leaves = flag.Int("leaves", 20000, "number of simulated TLS internet certificates")
		only   = flag.String("only", "", "comma-separated subset: table1..table6,figure1..figure3,headlines,attribution")
		jsonTo = flag.String("json", "", "also write every computed artifact as JSON to this file")
		csvDir = flag.String("csvdir", "", "also write plot-ready CSV files for the figures into this directory")
	)
	flag.Parse()
	if err := run(*seed, *scale, *leaves, *only, *jsonTo, *csvDir); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, scale float64, leaves int, only, jsonTo, csvDir string) error {
	artifacts := map[string]any{}
	want := func(name string) bool {
		if only == "" {
			return true
		}
		for _, part := range strings.Split(only, ",") {
			if strings.TrimSpace(part) == name {
				return true
			}
		}
		return false
	}

	u, err := cauniverse.New(seed)
	if err != nil {
		return err
	}

	section := func(title string) {
		fmt.Printf("\n===== %s =====\n", title)
	}

	if want("table1") {
		section("Table 1: number of certificates in different root stores")
		rows := analysis.Table1(u)
		artifacts["table1"] = rows
		fmt.Print(report.Table1(rows))
	}

	var pop *population.Population
	needPop := want("table2") || want("table5") || want("figure1") || want("figure2") ||
		want("headlines") || want("attribution")
	if needPop {
		fmt.Fprintln(os.Stderr, "generating device population...")
		pop, err = population.Generate(population.Config{Seed: seed, Universe: u, SessionScale: scale})
		if err != nil {
			return err
		}
	}

	if want("table2") {
		section("Table 2: top 5 mobile devices and manufacturers")
		devices, manufacturers := analysis.Table2(pop, 5)
		artifacts["table2"] = map[string]any{"devices": devices, "manufacturers": manufacturers}
		fmt.Print(report.Table2(devices, manufacturers))
	}

	if want("headlines") {
		section("Section 5/6 headline numbers")
		h := analysis.ComputeHeadlines(pop)
		artifacts["headlines"] = h
		fmt.Print(report.Headlines(h))
		ov := analysis.MozillaOverlap(u)
		artifacts["mozilla_overlap"] = ov
		fmt.Printf("AOSP 4.4 ∩ Mozilla: %d equivalent roots, %d byte-identical\n",
			ov.Equivalent, ov.ByteIdentical)
	}

	var ndb *notary.Notary
	needNotary := want("table3") || want("table4") || want("figure2") || want("figure3")
	if needNotary {
		fmt.Fprintln(os.Stderr, "simulating TLS internet and feeding the Notary...")
		world, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, Universe: u, NumLeaves: leaves})
		if err != nil {
			return err
		}
		ndb = notary.New(certgen.Epoch)
		tlsnet.Feed(world, ndb)
		fmt.Fprintln(os.Stderr, ndb.String())
	}

	if want("figure1") {
		section("Figure 1: AOSP certs vs. additional certs per manufacturer/version")
		pts := analysis.Figure1(pop)
		artifacts["figure1"] = pts
		fmt.Print(report.Figure1(pts))
	}

	if want("figure2") {
		section("Figure 2: vendor/operator certificate attribution (top 12 per group)")
		cells := analysis.Figure2(pop, ndb, 10)
		artifacts["figure2"] = cells
		artifacts["figure2_class_shares"] = analysis.ClassShares(cells)
		fmt.Print(report.Figure2(cells, 12))
		fmt.Println("\nPresence-class shares over displayed certificates:")
		for cl, share := range analysis.ClassShares(cells) {
			fmt.Printf("  %-30s %.1f%%\n", cl, share*100)
		}
	}

	if want("table3") {
		section("Table 3: certificates validated by Mozilla and AOSP root stores")
		rows := analysis.Table3(ndb, u)
		artifacts["table3"] = rows
		fmt.Print(report.Table3(rows))
	}

	var cats []analysis.CategoryValidation
	if want("table4") || want("figure3") {
		cats = analysis.ValidateCategories(ndb, analysis.Figure3Categories(u))
	}
	if want("table4") {
		section("Table 4: root certificates per category and zero-validation share")
		artifacts["table4"] = cats
		fmt.Print(report.Table4(cats))
	}
	if want("figure3") {
		section("Figure 3: ECDF of Notary certificates validated per root certificate")
		artifacts["figure3"] = cats
		fmt.Print(report.Figure3(cats, 12))
	}

	if want("table5") {
		section("Table 5: CAs found exclusively on rooted devices")
		rows := analysis.Table5(pop)
		artifacts["table5"] = rows
		fmt.Print(report.Table5(rows))
	}

	if want("attribution") {
		section("Interception attribution: store tampering vs. app misvalidation")
		ta := analysis.ComputeTrustAttribution(pop)
		artifacts["trust_attribution"] = ta
		fmt.Print(report.TrustAttributionTable(ta))
	}

	if want("table6") {
		section("Table 6: domains intercepted and whitelisted by the marketing proxy")
		intercepted, clean, err := runInterception(u)
		if err != nil {
			return err
		}
		artifacts["table6"] = map[string]any{"intercepted": intercepted, "whitelisted": clean}
		fmt.Print(report.Table6(intercepted, clean))
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return fmt.Errorf("creating %s: %w", csvDir, err)
		}
		writeCSV := func(name string, fn func(f *os.File) error) error {
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return err
			}
			defer f.Close()
			return fn(f)
		}
		if pts, ok := artifacts["figure1"].([]analysis.ScatterPoint); ok {
			if err := writeCSV("figure1.csv", func(f *os.File) error { return report.Figure1CSV(f, pts) }); err != nil {
				return err
			}
		}
		if cells, ok := artifacts["figure2"].([]analysis.AttributionCell); ok {
			if err := writeCSV("figure2.csv", func(f *os.File) error { return report.Figure2CSV(f, cells) }); err != nil {
				return err
			}
		}
		if cats != nil {
			if err := writeCSV("figure3.csv", func(f *os.File) error { return report.Figure3CSV(f, cats) }); err != nil {
				return err
			}
			if err := writeCSV("table4.csv", func(f *os.File) error { return report.Table4CSV(f, cats) }); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "CSV files written to %s\n", csvDir)
	}

	if jsonTo != "" {
		data, err := json.MarshalIndent(artifacts, "", "  ")
		if err != nil {
			return fmt.Errorf("marshaling artifacts: %w", err)
		}
		if err := os.WriteFile(jsonTo, data, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", jsonTo, err)
		}
		fmt.Fprintf(os.Stderr, "artifacts written to %s\n", jsonTo)
	}
	return nil
}

// runInterception reproduces §7 live: origin servers on loopback, the
// interception proxy in front, one Netalyzr session through it, and the
// detector splitting the probes.
func runInterception(u *cauniverse.Universe) (intercepted, clean []mitm.Finding, err error) {
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: u.Seed(), Universe: u, NumLeaves: 10})
	if err != nil {
		return nil, nil, err
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		return nil, nil, err
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()

	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: srv}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		return nil, nil, err
	}

	dev := device.New(device.Profile{
		Model: "Nexus 7", Manufacturer: "ASUS", Operator: "WiFi", Country: "US", Version: "4.4",
	}, u.AOSP("4.4"), nil)
	client, err := netalyzr.New(dev, proxy, netalyzr.WithValidationTime(certgen.Epoch))
	if err != nil {
		return nil, nil, err
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	det := &mitm.Detector{
		Reference: rootstore.Union("official stores", u.AOSP("4.4"), u.Mozilla(), u.IOS7()),
		At:        certgen.Epoch,
	}
	intercepted, clean = det.InspectReport(rep)
	return intercepted, clean, nil
}
