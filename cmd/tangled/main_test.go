package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdStores(t *testing.T) {
	out := capture(t, cmdStores)
	for _, want := range []string{"AOSP 4.4", "150", "Mozilla", "153", "iOS7", "227"} {
		if !strings.Contains(out, want) {
			t.Errorf("stores output missing %q", want)
		}
	}
}

func TestCmdDiff(t *testing.T) {
	out := capture(t, func() error { return cmdDiff([]string{"aosp4.4", "mozilla"}) })
	for _, want := range []string{"shared (equivalent): 130", "byte-identical: 117", "only in AOSP 4.4 (20)", "only in Mozilla (23)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if err := cmdDiff([]string{"aosp4.4"}); err == nil {
		t.Error("diff with one arg should error")
	}
	if err := cmdDiff([]string{"aosp4.4", "nosuchstore"}); err == nil {
		t.Error("diff with unknown store should error")
	}
}

func TestCmdExportAuditRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cacerts")
	out := capture(t, func() error { return cmdExport([]string{"aosp4.2", dir}) })
	if !strings.Contains(out, "wrote 140 certificates") {
		t.Errorf("export output: %s", out)
	}
	audit := capture(t, func() error { return cmdAudit([]string{"-version", "4.2", dir}) })
	for _, want := range []string{"140 roots", "AOSP roots present: 140", "missing: 0", "additional roots:   0"} {
		if !strings.Contains(audit, want) {
			t.Errorf("audit output missing %q:\n%s", want, audit)
		}
	}
	// Auditing an empty directory reports a 0-root device store.
	empty := capture(t, func() error { return cmdAudit([]string{t.TempDir()}) })
	if !strings.Contains(empty, "0 roots") {
		t.Errorf("empty-dir audit output:\n%s", empty)
	}
}

func TestCmdClassifyAndShow(t *testing.T) {
	out := capture(t, func() error { return cmdClassify([]string{"DoD CLASS 3 Root CA"}) })
	for _, want := range []string{"extra-ios7-only", "in iOS7:      true", "in Mozilla:   false"} {
		if !strings.Contains(out, want) {
			t.Errorf("classify output missing %q:\n%s", want, out)
		}
	}
	if err := cmdClassify([]string{"No Such Root"}); err == nil {
		t.Error("classify unknown root should error")
	}

	show := capture(t, func() error { return cmdShow([]string{"-pem", "Motorola FOTA Root CA"}) })
	for _, want := range []string{"CN=Motorola FOTA Root CA", "BEGIN CERTIFICATE", "Android subject hash"} {
		if !strings.Contains(show, want) {
			t.Errorf("show output missing %q", want)
		}
	}
}

func TestCmdSurface(t *testing.T) {
	out := capture(t, func() error { return cmdSurface([]string{"aggregated"}) })
	if !strings.Contains(out, "262 roots") || !strings.Contains(out, "212 roots") {
		t.Errorf("surface output:\n%s", out)
	}
}

func TestCmdFleetExportLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	gen := capture(t, func() error {
		return cmdFleet([]string{"-scale", "0.02", "-export", dir})
	})
	if !strings.Contains(gen, "dataset written") {
		t.Errorf("fleet export output:\n%s", gen)
	}
	load := capture(t, func() error { return cmdFleet([]string{"-load", dir}) })
	if !strings.Contains(load, "Sessions") || !strings.Contains(load, "Device model") {
		t.Errorf("fleet load output:\n%s", load)
	}
}

func TestCmdMinimizeSweep(t *testing.T) {
	out := capture(t, func() error {
		return cmdMinimize([]string{"-leaves", "800", "-sweep", "aosp4.1"})
	})
	if !strings.Contains(out, "threshold sweep") || !strings.Contains(out, "removed%") {
		t.Errorf("minimize sweep output:\n%s", out)
	}
}

func TestResolveStore(t *testing.T) {
	for _, name := range []string{"aosp4.1", "aosp4.2", "aosp4.3", "aosp4.4", "mozilla", "ios7", "aggregated"} {
		s, err := resolveStore(name)
		if err != nil || s == nil {
			t.Errorf("resolveStore(%q): %v", name, err)
		}
	}
	if _, err := resolveStore("bogus"); err == nil {
		t.Error("bogus store should error")
	}
	if _, err := resolveStore("/nonexistent/path"); err == nil {
		t.Error("nonexistent path should error")
	}
}
