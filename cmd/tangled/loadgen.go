package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/loadgen"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
)

// cmdLoadgen drives sustained synthetic ingest traffic at a notary
// service and optionally gates on the measured p99 and error budget —
// the engine behind `make slo-gate` and the CI slo-smoke step. With no
// -addr it boots a sharded in-process topology (notaryshard cluster
// behind a notarynet server) so the gate measures the full wire path
// with zero external setup.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "existing notaryd address (default: boot an in-process sharded topology)")
	shards := fs.Int("shards", 4, "shard count for the in-process topology")
	sessions := fs.Int("sessions", 2000, "total observations to send")
	clients := fs.Int("clients", 4, "concurrent clients")
	batch := fs.Int("batch", 64, "observations per request")
	leaves := fs.Int("leaves", 300, "synthetic leaf population")
	seed := fs.Int64("seed", 1, "world seed")
	rate := fs.Float64("rate", 0, "observations/second across all clients (0 = unthrottled)")
	faultSeed := fs.Int64("fault-seed", 0, "inject dial-path faults with this seed (0 = none)")
	p99Gate := fs.Float64("p99-ms", 0, "fail if ingest p99 exceeds this many ms (0 = report only)")
	errBudget := fs.Float64("error-budget", 0, "max tolerated request error rate when gating")
	jsonOut := fs.String("json", "", "write the machine-readable SLO document here")
	label := fs.String("label", "loadgen", "label recorded in the SLO document")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() != 0 {
		return errUsage
	}

	target := *addr
	var cluster *notaryshard.Cluster
	if target == "" {
		var err error
		cluster, err = notaryshard.New(certgen.Epoch, *shards)
		if err != nil {
			return err
		}
		srv, err := notarynet.NewServer(cluster, "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Printf("booted %d-shard in-process notary at %s\n", *shards, target)
	}

	cfg := loadgen.Config{
		Addr:      target,
		Sessions:  *sessions,
		Clients:   *clients,
		Batch:     *batch,
		Rate:      *rate,
		Seed:      *seed,
		NumLeaves: *leaves,
		Observer:  obs.New(),
	}
	if *faultSeed != 0 {
		cfg.Faults = faultnet.New(faultnet.Plan{
			Seed:        *faultSeed,
			RefuseProb:  0.03,
			LatencyProb: 0.10,
			ResetProb:   0.02,
			StallProb:   0.01,
		})
	}
	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}

	slo := loadgen.SLO{MaxP99Ms: *p99Gate, MaxErrorRate: *errBudget}
	var violations []string
	if *p99Gate > 0 {
		violations = rep.Check(slo)
	}

	doc := map[string]any{
		"label":          *label,
		"generated_unix": time.Now().Unix(),
		"config": map[string]any{
			"addr": *addr, "shards": *shards, "sessions": *sessions, "clients": *clients,
			"batch": *batch, "leaves": *leaves, "seed": *seed, "rate": *rate,
			"fault_seed": *faultSeed,
		},
		"slo":        slo,
		"report":     rep,
		"p99_ms":     rep.P99(),
		"error_rate": rep.ErrorRate(),
		"throughput": rep.Throughput(),
		"pass":       len(violations) == 0,
		"violations": violations,
	}
	if cluster != nil {
		snap := cluster.Snapshot()
		shardP99 := make([]float64, cluster.NumShards())
		for i := range shardP99 {
			shardP99[i] = cluster.ShardSnapshot(i).Hists[notaryshard.KeyShardIngestLatency].Quantile(0.99)
		}
		doc["service"] = map[string]any{
			"shards":        cluster.NumShards(),
			"router_p99_ms": snap.Hists[notaryshard.KeyIngestLatency].Quantile(0.99),
			"shard_p99_ms":  shardP99,
			"unique":        cluster.NumUnique(),
			"unexpired":     cluster.NumUnexpired(),
			"sessions":      cluster.Sessions(),
		}
	}
	if *jsonOut != "" {
		body, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(body, '\n'), 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("loadgen: %d/%d observations acked in %.0fms (%.0f obs/s), %d/%d requests failed\n",
		rep.Acked, rep.Sent, rep.ElapsedMs, rep.Throughput(), rep.FailedRequests, rep.Requests)
	fmt.Printf("latency: p50 %.3fms p90 %.3fms p99 %.3fms\n",
		rep.Latency.Quantile(0.50), rep.Latency.Quantile(0.90), rep.P99())
	if *p99Gate > 0 {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "SLO VIOLATION: %s\n", v)
			}
			return fmt.Errorf("SLO gate failed (%d violation(s))", len(violations))
		}
		fmt.Printf("SLO gate passed: p99 %.3fms <= %.1fms, error rate %.4f <= %.4f\n",
			rep.P99(), *p99Gate, rep.ErrorRate(), *errBudget)
	}
	return nil
}
