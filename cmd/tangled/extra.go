package main

import (
	"context"
	"flag"
	"fmt"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/certview"
	"tangledmass/internal/dataset"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/recommend"
	"tangledmass/internal/report"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trustlevel"
)

// buildNotary simulates the TLS internet and feeds a Notary, the substrate
// for minimize.
func buildNotary(seed int64, leaves int) (*notary.Notary, error) {
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: leaves})
	if err != nil {
		return nil, err
	}
	n := notary.New(certgen.Epoch)
	tlsnet.Feed(world, n)
	return n, nil
}

// cmdMinimize proposes a §8-style store pruning with measured breakage.
func cmdMinimize(args []string) error {
	fs := flag.NewFlagSet("minimize", flag.ContinueOnError)
	leaves := fs.Int("leaves", 10000, "simulated TLS internet size")
	seed := fs.Int64("seed", 1, "seed")
	threshold := fs.Int("threshold", 1, "minimum validations a root needs to be kept")
	sweep := fs.Bool("sweep", false, "run a threshold sweep instead of one proposal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("minimize needs one store")
	}
	store, err := resolveStore(fs.Arg(0))
	if err != nil {
		return err
	}
	n, err := buildNotary(*seed, *leaves)
	if err != nil {
		return err
	}
	if *sweep {
		fmt.Printf("threshold sweep for %s over %s:\n", store.Name(), n)
		fmt.Printf("%-10s %-10s %-12s %-10s %-10s\n", "threshold", "removed", "removed%", "broken", "broken%")
		for _, pt := range recommend.Sweep(n, store, []int{1, 2, 5, 10, 25, 50, 100}) {
			fmt.Printf("%-10d %-10d %-12.1f %-10d %-10.2f\n",
				pt.Threshold, pt.Removed, pt.RemovedFrac*100, pt.Broken, pt.BrokenFrac*100)
		}
		return nil
	}
	m := recommend.Minimize(n, store, *threshold)
	br := recommend.EvaluateBreakage(n, m)
	fmt.Println(m)
	fmt.Printf("breakage: %d of %d validated certificates lost (%.2f%%)\n",
		br.Broken, br.Before, br.BrokenFraction()*100)
	fmt.Println("\nroots proposed for removal (validations):")
	for _, u := range m.Remove {
		fmt.Printf("  %6d  %s\n", u.Validations, u.Identity.Subject)
	}
	return nil
}

// cmdSurface compares the TLS attack surface under Android's all-usage
// policy vs a Mozilla-style per-usage policy (§8).
func cmdSurface(args []string) error {
	fs := flag.NewFlagSet("surface", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("surface needs one store")
	}
	store, err := resolveStore(fs.Arg(0))
	if err != nil {
		return err
	}
	u := cauniverse.Default()
	android := trustlevel.Surface("android (all-usage)", trustlevel.AndroidPolicy(store))
	mozilla := trustlevel.Surface("mozilla-style (per-usage)", trustlevel.MozillaStylePolicy(u, store))
	fmt.Printf("store %s: %d roots\n", store.Name(), store.Len())
	for _, r := range []trustlevel.SurfaceReport{android, mozilla} {
		fmt.Printf("  %-28s %3d roots can mint TLS server certs (%.0f%% excluded)\n",
			r.PolicyName, r.ServerAuthRoots, r.RemovedFraction()*100)
	}
	return nil
}

// cmdFleet generates (or loads) a fleet and prints the §5/§6 analyses.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.25, "session-quota scale")
	seed := fs.Int64("seed", 1, "seed")
	export := fs.String("export", "", "write the generated fleet as a dataset directory")
	format := fs.String("format", "jsonl", "dataset format for -export (jsonl|columnar)")
	load := fs.String("load", "", "load a fleet from a dataset directory instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	var (
		pop *population.Population
		err error
	)
	if *load != "" {
		pop, err = dataset.NewReader(*load).Read(ctx)
	} else {
		pop, err = population.Generate(population.Config{Seed: *seed, SessionScale: *scale})
	}
	if err != nil {
		return err
	}
	fmt.Print(report.Headlines(analysis.ComputeHeadlines(pop)))
	devices, manufacturers := analysis.Table2(pop, 5)
	fmt.Println()
	fmt.Print(report.Table2(devices, manufacturers))
	fmt.Println()
	fmt.Print(report.Table5(analysis.Table5(pop)))
	if *export != "" {
		f, err := datasetFormat(*format)
		if err != nil {
			return err
		}
		if err := dataset.NewWriter(*export, dataset.WithFormat(f)).Write(ctx, pop); err != nil {
			return err
		}
		fmt.Printf("\ndataset written to %s\n", *export)
	}
	return nil
}

// cmdShow dumps one catalog certificate in openssl-style text.
func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	pem := fs.Bool("pem", false, "append the PEM encoding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show needs one certificate name")
	}
	u := cauniverse.Default()
	r := u.Root(fs.Arg(0))
	if r == nil {
		return fmt.Errorf("no catalog root named %q", fs.Arg(0))
	}
	fmt.Print(certview.Render(r.Issued.Cert, certview.Options{Now: certgen.Epoch, ShowPEM: *pem}))
	return nil
}
