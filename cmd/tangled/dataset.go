package main

import (
	"context"
	"flag"
	"fmt"

	"tangledmass/internal/dataset"
)

// datasetFormat parses a -format flag value.
func datasetFormat(s string) (dataset.Format, error) {
	switch s {
	case "jsonl":
		return dataset.JSONL, nil
	case "columnar":
		return dataset.Columnar, nil
	case "auto", "":
		return dataset.Auto, nil
	}
	return dataset.Auto, fmt.Errorf("unknown dataset format %q (want jsonl or columnar)", s)
}

// cmdDataset converts, summarizes and integrity-checks dataset directories.
func cmdDataset(args []string) error {
	if len(args) < 1 {
		return errUsage
	}
	ctx := context.Background()
	switch args[0] {
	case "convert":
		fs := flag.NewFlagSet("dataset convert", flag.ContinueOnError)
		format := fs.String("format", "columnar", "target format (jsonl|columnar)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return fmt.Errorf("dataset convert needs <src-dir> <dst-dir>")
		}
		f, err := datasetFormat(*format)
		if err != nil {
			return err
		}
		pop, err := dataset.NewReader(fs.Arg(0)).Read(ctx)
		if err != nil {
			return err
		}
		if err := dataset.NewWriter(fs.Arg(1), dataset.WithFormat(f)).Write(ctx, pop); err != nil {
			return err
		}
		fmt.Printf("converted %s -> %s (%s, %d handsets, %d sessions)\n",
			fs.Arg(0), fs.Arg(1), f, len(pop.Handsets), len(pop.Sessions))
		return nil
	case "inspect", "verify":
		if len(args) != 2 {
			return fmt.Errorf("dataset %s needs one dataset directory", args[0])
		}
		r := dataset.NewReader(args[1])
		var (
			info *dataset.Info
			err  error
		)
		if args[0] == "verify" {
			info, err = r.Verify(ctx)
		} else {
			info, err = r.Inspect(ctx)
		}
		if err != nil {
			return err
		}
		fmt.Printf("format:   %s\n", info.Format)
		fmt.Printf("handsets: %d\n", info.Handsets)
		fmt.Printf("certs:    %d\n", info.Certs)
		fmt.Printf("sessions: %d\n", info.Sessions)
		fmt.Printf("bytes:    %d\n", info.Bytes)
		for _, s := range info.Sections {
			fmt.Printf("  section %-10s offset %8d  length %8d  crc32c %08x\n",
				s.Name, s.Offset, s.Length, s.CRC32C)
		}
		if args[0] == "verify" {
			fmt.Println("ok: all checksums and references verified")
		}
		return nil
	default:
		return errUsage
	}
}
