package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"tangledmass/internal/campaign"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/mitm"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

// cmdCampaign runs the full measurement pipeline in-process — fleet,
// loopback TLS origins, interception proxy, collection server — and dumps
// the run's aggregated observability snapshot as JSON. With a fixed -seed
// and -frozen-clock the snapshot is byte-identical across runs, which makes
// it diffable in CI.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.02, "session-quota scale (1.0 = the paper's 15,970 sessions)")
	seed := fs.Int64("seed", 1, "seed for the fleet and the simulated TLS internet")
	concurrency := fs.Int("concurrency", 8, "concurrent sessions")
	frozen := fs.Bool("frozen-clock", false, "freeze the observability clock (byte-identical snapshots across runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: *seed, Universe: u, SessionScale: *scale})
	if err != nil {
		return err
	}

	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: *seed, Universe: u, NumLeaves: 10})
	if err != nil {
		return err
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		return err
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		return err
	}
	defer origin.Close()

	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: origin}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		return err
	}

	collector, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer collector.Close()

	opts := []campaign.Option{
		campaign.WithProxy(proxy),
		campaign.WithTargets([]tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},
			{Host: "www.google.com", Port: 443},
			{Host: "www.twitter.com", Port: 443},
		}),
		campaign.WithConcurrency(*concurrency),
		campaign.WithValidationTime(certgen.Epoch),
	}
	if *frozen {
		opts = append(opts, campaign.WithClock(func() time.Time { return certgen.Epoch }))
	}
	stats, err := campaign.Run(context.Background(), pop, origin, collector.Addr(), opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "campaign: %d sessions (%d failed, %d untrusted probes)\n",
		stats.Sessions, stats.Failed, stats.UntrustedProbes)
	out, err := stats.Obs.JSON()
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	return nil
}
