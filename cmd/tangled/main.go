// Command tangled is the root-store audit CLI: inspect, diff, export, and
// audit Android-format root certificate stores against the reference
// universes (AOSP 4.1–4.4, Mozilla, iOS7).
//
// Usage:
//
//	tangled stores
//	tangled diff <store-a> <store-b>
//	tangled export <store> <dir>
//	tangled audit [-version 4.4] <cacerts-dir>
//	tangled classify <cert-name>
//	tangled campaign [-scale 0.02] [-seed 1] [-frozen-clock]
//
// A <store> argument is either a built-in name (aosp4.1, aosp4.2, aosp4.3,
// aosp4.4, mozilla, ios7, aggregated) or a path to an Android cacerts
// directory (/system/etc/security/cacerts layout).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/notary"
	"tangledmass/internal/report"
	"tangledmass/internal/rootstore"
)

// errUsage signals a command-line mistake; main prints usage and exits 2.
var errUsage = errors.New("usage error")

func main() {
	log.SetFlags(0)
	log.SetPrefix("tangled: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, errUsage) {
			usage()
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errUsage
	}
	switch args[0] {
	case "stores":
		return cmdStores()
	case "diff":
		return cmdDiff(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "classify":
		return cmdClassify(args[1:])
	case "minimize":
		return cmdMinimize(args[1:])
	case "surface":
		return cmdSurface(args[1:])
	case "fleet":
		return cmdFleet(args[1:])
	case "dataset":
		return cmdDataset(args[1:])
	case "show":
		return cmdShow(args[1:])
	case "campaign":
		return cmdCampaign(args[1:])
	case "fsck":
		return cmdFsck(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		return errUsage
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tangled stores                          list reference stores (Table 1)
  tangled diff <store-a> <store-b>        three-way diff under equivalence
  tangled export <store> <dir>            write a store as an Android cacerts dir
  tangled audit [-version V] <cacerts-dir>  audit a device store against AOSP
  tangled classify <cert-name>            presence class of a catalog root
  tangled minimize [-threshold N] [-sweep] <store>  propose §8 store pruning
  tangled surface <store>                 TLS attack surface under trust policies
  tangled fleet [-scale F] [-export DIR] [-load DIR]  fleet analyses
  tangled dataset convert [-format F] <src> <dst>  re-encode a dataset (jsonl|columnar)
  tangled dataset inspect <dir>           summarize a dataset directory
  tangled dataset verify <dir>            integrity-check a dataset (checksums, references)
  tangled show [-pem] <cert-name>         openssl-style certificate dump
  tangled campaign [-scale F] [-seed N] [-frozen-clock]  run the pipeline, dump the obs snapshot as JSON
  tangled fsck <data-dir>                 verify a notaryd data directory offline
  tangled loadgen [-shards N] [-sessions N] [-p99-ms MS]  drive load at a (sharded) notary, gate on p99`)
}

// resolveStore maps a name or cacerts path to a store.
func resolveStore(arg string) (*rootstore.Store, error) {
	u := cauniverse.Default()
	switch strings.ToLower(arg) {
	case "aosp4.1", "aosp-4.1":
		return u.AOSP("4.1"), nil
	case "aosp4.2", "aosp-4.2":
		return u.AOSP("4.2"), nil
	case "aosp4.3", "aosp-4.3":
		return u.AOSP("4.3"), nil
	case "aosp4.4", "aosp-4.4":
		return u.AOSP("4.4"), nil
	case "mozilla":
		return u.Mozilla(), nil
	case "ios7":
		return u.IOS7(), nil
	case "aggregated":
		return u.AggregatedAndroid(), nil
	}
	if st, err := os.Stat(arg); err == nil && st.IsDir() {
		return rootstore.ReadCacertsDir(arg)
	}
	return nil, fmt.Errorf("unknown store %q (not a built-in name or cacerts directory)", arg)
}

func cmdStores() error {
	fmt.Print(report.Table1(analysis.Table1(cauniverse.Default())))
	return nil
}

func cmdDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff needs exactly two stores")
	}
	a, err := resolveStore(args[0])
	if err != nil {
		return err
	}
	b, err := resolveStore(args[1])
	if err != nil {
		return err
	}
	d := rootstore.Diff(a, b)
	fmt.Printf("%s: %d roots | %s: %d roots | shared (equivalent): %d | byte-identical: %d\n",
		a.Name(), a.Len(), b.Name(), b.Len(), len(d.Both), rootstore.ByteIntersectCount(a, b))
	if len(d.OnlyA) > 0 {
		fmt.Printf("\nonly in %s (%d):\n", a.Name(), len(d.OnlyA))
		for _, c := range d.OnlyA {
			fmt.Printf("  %s  %s\n", certid.SubjectHashString(c), c.Subject.CommonName)
		}
	}
	if len(d.OnlyB) > 0 {
		fmt.Printf("\nonly in %s (%d):\n", b.Name(), len(d.OnlyB))
		for _, c := range d.OnlyB {
			fmt.Printf("  %s  %s\n", certid.SubjectHashString(c), c.Subject.CommonName)
		}
	}
	return nil
}

func cmdExport(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("export needs <store> <dir>")
	}
	s, err := resolveStore(args[0])
	if err != nil {
		return err
	}
	if err := rootstore.WriteCacertsDir(args[1], s); err != nil {
		return err
	}
	fmt.Printf("wrote %d certificates to %s\n", s.Len(), args[1])
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	version := fs.String("version", "4.4", "AOSP version to audit against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("audit needs one cacerts directory")
	}
	dir := fs.Arg(0)
	deviceStore, err := rootstore.ReadCacertsDir(dir)
	if err != nil {
		return err
	}
	u := cauniverse.Default()
	aosp := u.AOSP(*version)
	d := rootstore.Diff(deviceStore, aosp)
	fmt.Printf("device store %s: %d roots (AOSP %s reference: %d)\n",
		dir, deviceStore.Len(), *version, aosp.Len())
	fmt.Printf("  AOSP roots present: %d\n", len(d.Both))
	fmt.Printf("  AOSP roots missing: %d\n", len(d.OnlyB))
	fmt.Printf("  additional roots:   %d\n", len(d.OnlyA))
	if len(d.OnlyB) > 0 {
		fmt.Println("\nmissing AOSP roots:")
		for _, c := range d.OnlyB {
			fmt.Printf("  %s  %s\n", certid.SubjectHashString(c), c.Subject.CommonName)
		}
	}
	if len(d.OnlyA) > 0 {
		fmt.Println("\nadditional roots (presence class):")
		for _, c := range d.OnlyA {
			class := "unknown to reference universe"
			inMoz := u.Mozilla().Contains(c)
			inIOS := u.IOS7().Contains(c)
			switch {
			case inMoz && inIOS:
				class = "in Mozilla and iOS7"
			case inMoz:
				class = "in Mozilla only"
			case inIOS:
				class = "in iOS7 only"
			}
			fmt.Printf("  %s  %-50s %s\n", certid.SubjectHashString(c), c.Subject.CommonName, class)
		}
	}
	return nil
}

// cmdFsck verifies a notaryd data directory offline: snapshot checksums,
// journal frame CRCs, and the one-live-generation layout. Exit status 1
// when any check fails, so scripts can gate on it.
func cmdFsck(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("fsck needs one data directory")
	}
	r, err := notary.FsckDir(args[0])
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	if !r.Healthy() {
		return fmt.Errorf("%d integrity issue(s) in %s", len(r.Issues), args[0])
	}
	return nil
}

func cmdClassify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("classify needs one certificate name")
	}
	u := cauniverse.Default()
	r := u.Root(args[0])
	if r == nil {
		return fmt.Errorf("no catalog root named %q", args[0])
	}
	fmt.Printf("name:      %s\n", r.Name)
	fmt.Printf("class:     %s\n", r.Class)
	fmt.Printf("hash:      %s\n", certid.SubjectHashString(r.Issued.Cert))
	fmt.Printf("subject:   %s\n", certid.SubjectString(r.Issued.Cert))
	fmt.Printf("issues TLS leaves: %v (popularity rank %d)\n", r.Issues, r.Rank)
	fmt.Printf("in AOSP 4.4:  %v\n", u.AOSP("4.4").Contains(r.Issued.Cert))
	fmt.Printf("in Mozilla:   %v\n", u.Mozilla().Contains(r.Issued.Cert))
	fmt.Printf("in iOS7:      %v\n", u.IOS7().Contains(r.Issued.Cert))
	return nil
}
