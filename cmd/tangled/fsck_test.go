package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
)

func TestCmdFsck(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	db, err := notary.Open(faultfs.Disk, dir, certgen.Epoch, notary.WithCorpus(corpus.New()))
	if err != nil {
		t.Fatal(err)
	}
	g := certgen.NewGenerator(95)
	root, err := g.SelfSignedCA("Fsck CLI Root")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveCA(root.Cert, 443); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	out := capture(t, func() error { return cmdFsck([]string{dir}) })
	for _, want := range []string{"snapshot:", "journal:", "clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("fsck output missing %q:\n%s", want, out)
		}
	}

	// Damage the directory: fsck must report the issue and fail.
	if err := os.WriteFile(filepath.Join(dir, "snap-99.v3"), []byte("TANGLED-NOTARY-SNAP3\nbad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdFsck([]string{dir}); err == nil {
		t.Error("fsck over a corrupt snapshot should fail")
	}

	if err := cmdFsck(nil); err == nil {
		t.Error("fsck without a directory should error")
	}
	if err := cmdFsck([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("fsck of a missing directory should error")
	}
}
