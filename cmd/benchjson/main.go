// Command benchjson turns `go test -bench` text output into a
// machine-readable JSON benchmark record, and compares two such records as
// the verify pipeline's bench gate.
//
// Two subcommands:
//
//	benchjson emit [-label pr4] < bench.out > BENCH_pr4.json
//	    Parse benchmark lines from stdin ("BenchmarkX-8  12  3456 ns/op
//	    789 B/op  10 allocs/op") into a JSON document keyed by benchmark
//	    name, with the goos/goarch/cpu context lines captured when present.
//
//	benchjson gate -baseline BENCH_pr5.json [-match 'Table|Figure']
//	              [-tolerance 0.25] [-alloc-tolerance 0.25] < bench.out
//	    Parse the current sweep from stdin and fail (exit 1) if any
//	    benchmark whose name matches the pattern regressed by more than
//	    tolerance (ns/op relative to the baseline record) or grew its
//	    allocs/op by more than alloc-tolerance (enforced only when both
//	    sides carry -benchmem data; -alloc-tolerance -1 disables the
//	    check). Benchmarks missing from either side are reported but do
//	    not fail the gate — new benchmarks have no baseline yet.
//
// Benchmark names are recorded without the -GOMAXPROCS suffix so records
// compare across machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Record is the whole JSON document: context plus per-benchmark results.
type Record struct {
	Label      string            `json:"label,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson emit|gate [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "emit":
		err = runEmit(os.Args[2:])
	case "gate":
		err = runGate(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q; want emit or gate", os.Args[1])
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	label := fs.String("label", "", "free-form label stored in the record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	rec.Label = *label
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

func runGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	baselinePath := fs.String("baseline", "", "baseline JSON record to compare against")
	match := fs.String("match", ".", "regexp selecting which benchmarks the gate enforces")
	tolerance := fs.Float64("tolerance", 0.25, "maximum allowed relative ns/op regression")
	allocTolerance := fs.Float64("alloc-tolerance", 0.25, "maximum allowed relative allocs/op regression (-1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" {
		return fmt.Errorf("gate needs -baseline")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match pattern: %w", err)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var baseline Record
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", *baselinePath, err)
	}
	current, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	return gate(baseline, current, re, *tolerance, *allocTolerance)
}

// gate prints a per-benchmark comparison and returns an error listing every
// enforced benchmark that regressed beyond the tolerances. Time is always
// enforced; allocations only when both records carry allocs/op (i.e. both
// sweeps ran with -benchmem) and allocTolerance is non-negative.
func gate(baseline, current Record, re *regexp.Regexp, tolerance, allocTolerance float64) error {
	names := make([]string, 0, len(current.Benchmarks))
	for name := range current.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressed []string
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		cur := current.Benchmarks[name]
		base, ok := baseline.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-40s %12.0f ns/op  (no baseline, skipped)\n", name, cur.NsPerOp)
			continue
		}
		if base.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", name, base.NsPerOp, cur.NsPerOp, ratio))
		}
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op  %5.2fx  %s\n", name, base.NsPerOp, cur.NsPerOp, ratio, verdict)
		if allocTolerance < 0 || base.AllocsPerOp <= 0 || cur.AllocsPerOp <= 0 {
			continue
		}
		aRatio := float64(cur.AllocsPerOp) / float64(base.AllocsPerOp)
		aVerdict := "ok"
		if aRatio > 1+allocTolerance {
			aVerdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %d -> %d allocs/op (%.2fx)", name, base.AllocsPerOp, cur.AllocsPerOp, aRatio))
		}
		fmt.Printf("  %-40s %12d -> %12d allocs/op  %5.2fx  %s\n", "", base.AllocsPerOp, cur.AllocsPerOp, aRatio, aVerdict)
	}
	for name := range baseline.Benchmarks {
		if re.MatchString(name) {
			if _, ok := current.Benchmarks[name]; !ok {
				fmt.Printf("  %-40s missing from current sweep\n", name)
			}
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("bench gate: %d benchmark(s) regressed more than %.0f%%:\n  %s",
			len(regressed), 100*tolerance, strings.Join(regressed, "\n  "))
	}
	return nil
}

// benchLine matches one benchmark result line. The iteration count and
// ns/op are always present; -benchmem adds B/op and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parse reads `go test -bench` output into a Record.
func parse(r io.Reader) (Record, error) {
	rec := Record{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return rec, fmt.Errorf("bad ns/op on line %q: %w", line, err)
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Benchmarks[m[1]] = res
	}
	return rec, sc.Err()
}
