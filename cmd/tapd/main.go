// Command tapd runs a passive TLS monitor: a transparent TCP relay that
// extracts certificate chains from TLS ≤1.2 handshakes crossing it (§4.2's
// sensor mechanism), keeps a local database, and optionally streams each
// chain to a notaryd service.
//
// Usage:
//
//	tapd -upstream host:port [-notary 127.0.0.1:7511] [-port 443]
//
// Clients connect to tapd's printed address; bytes relay untouched while
// observed chains flow to the Notary.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/tap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tapd: ")
	var (
		upstream   = flag.String("upstream", "", "origin host:port to relay to (required)")
		notaryAddr = flag.String("notary", "", "notaryd address to stream observations to (empty: local only)")
		port       = flag.Int("port", 443, "logical service port recorded with each observation")
	)
	flag.Parse()
	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*upstream, *notaryAddr, *port); err != nil {
		log.Fatal(err)
	}
}

func run(upstream, notaryAddr string, port int) error {
	sink := &fanout{local: notary.New(certgen.Epoch)}
	if notaryAddr != "" {
		remote, err := notarynet.Dial(notaryAddr)
		if err != nil {
			return err
		}
		defer remote.Close()
		sink.remote = remote
	}

	t, err := tap.New(upstream, sink, port)
	if err != nil {
		return err
	}
	log.Printf("tapping %s on %s", upstream, t.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Printf("extracted %d chains; %s", t.Extracted(), sink.local)
	return t.Close()
}

// fanout observes into the local database and forwards to the remote
// service when configured.
type fanout struct {
	local  *notary.Notary
	remote *notarynet.Client
}

// Observe implements tap.Observer.
func (f *fanout) Observe(obs notary.Observation) {
	f.local.Observe(obs)
	if f.remote != nil {
		if err := f.remote.Observe(obs.Chain, obs.Port); err != nil {
			log.Printf("forwarding observation: %v", err)
		}
	}
}
