// Command tapd runs a passive TLS monitor: a transparent TCP relay that
// extracts certificate chains from TLS ≤1.2 handshakes crossing it (§4.2's
// sensor mechanism), keeps a local database, and optionally streams each
// chain to a notaryd service.
//
// Usage:
//
//	tapd -upstream host:port [-notary 127.0.0.1:7511] [-port 443] [-debug 127.0.0.1:7583]
//
// Clients connect to tapd's printed address; bytes relay untouched while
// observed chains flow to the Notary. -debug mounts the observability
// snapshot (forwarding dial/retry counters) as JSON on an HTTP listener.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
	"tangledmass/internal/tap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tapd: ")
	var (
		upstream   = flag.String("upstream", "", "origin host:port to relay to (required)")
		notaryAddr = flag.String("notary", "", "notaryd address to stream observations to (empty: local only)")
		port       = flag.Int("port", 443, "logical service port recorded with each observation")
		debug      = flag.String("debug", "", "serve the observability snapshot over HTTP on this address (empty: disabled)")
	)
	flag.Parse()
	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*upstream, *notaryAddr, *port, *debug); err != nil {
		log.Fatal(err)
	}
}

func run(upstream, notaryAddr string, port int, debug string) error {
	ctx := context.Background()
	observer := obs.New()
	sink := &fanout{ctx: ctx, local: notary.New(certgen.Epoch)}
	if notaryAddr != "" {
		remote, err := notarynet.NewClient(ctx, notaryAddr, notarynet.WithObserver(observer))
		if err != nil {
			return err
		}
		defer remote.Close()
		sink.remote = remote
	}

	t, err := tap.New(upstream, sink, port)
	if err != nil {
		return err
	}
	log.Printf("tapping %s on %s", upstream, t.Addr())
	if debug != "" {
		ln, err := obs.ServeDebug(debug, observer)
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("debug listening on %s", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Printf("extracted %d chains; %s", t.Extracted(), sink.local)
	return t.Close()
}

// fanout observes into the local database and forwards to the remote
// service when configured.
type fanout struct {
	ctx    context.Context
	local  *notary.Notary
	remote *notarynet.Client
}

// Observe implements tap.Observer.
func (f *fanout) Observe(o notary.Observation) {
	f.local.Observe(o)
	if f.remote != nil {
		if err := f.remote.Observe(f.ctx, o.Chain, o.Port); err != nil {
			log.Printf("forwarding observation: %v", err)
		}
	}
}
