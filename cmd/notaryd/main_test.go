package main

import (
	"bytes"
	"context"
	"crypto/x509"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
)

// lifecycleChains builds a few observation chains for daemon tests.
func lifecycleChains(t *testing.T, n int) [][]*x509.Certificate {
	t.Helper()
	g := certgen.NewGenerator(90)
	root, err := g.SelfSignedCA("Daemon Root")
	if err != nil {
		t.Fatal(err)
	}
	chains := make([][]*x509.Certificate, n)
	for i := range chains {
		leaf, err := g.Leaf(root, fmt.Sprintf("daemon%d.example.com", i))
		if err != nil {
			t.Fatal(err)
		}
		chains[i] = []*x509.Certificate{leaf.Cert, root.Cert}
	}
	return chains
}

func bootTestDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	d, err := boot(config{
		addr:       "127.0.0.1:0",
		dataDir:    dir,
		checkpoint: 50 * time.Millisecond,
		prefeed:    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonLifecycle: boot with a data dir, ingest over the wire, drain
// on shutdown, reboot, and recover everything — then prove the restart is
// byte-exact by comparing canonical snapshots, and that the journaled
// write path (not the in-memory shortcut) served the ingest.
func TestDaemonLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "notary-data")
	chains := lifecycleChains(t, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	d := bootTestDaemon(t, dir)
	client, err := notarynet.NewClient(ctx, d.srv.Addr(), notarynet.WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	for _, chain := range chains {
		if err := client.Observe(ctx, chain, 443); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.ObserveCA(ctx, chains[0][1], 8883); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != int64(len(chains))+1 {
		t.Fatalf("sessions = %d, want %d", stats.Sessions, len(chains)+1)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := d.db.Notary().Save(&before); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// The shutdown checkpoint must leave a clean directory.
	report, err := notary.FsckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy() {
		t.Fatalf("post-shutdown fsck: %v", report.Issues)
	}

	// Reboot: recovery must reconstruct the exact database.
	d2 := bootTestDaemon(t, dir)
	defer d2.Close()
	var after bytes.Buffer
	if err := d2.db.Notary().Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("restart changed the database bytes")
	}
	if got := d2.db.Notary().Sessions(); got != int64(len(chains))+1 {
		t.Fatalf("recovered sessions = %d, want %d", got, len(chains)+1)
	}
}

// TestDaemonRecoversWithoutGracefulShutdown kills the daemon process state
// without Close — the journal alone must carry the acknowledged
// observations into the next boot.
func TestDaemonRecoversWithoutGracefulShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "notary-data")
	chains := lifecycleChains(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	d := boot2(t, config{addr: "127.0.0.1:0", dataDir: dir, prefeed: 0})
	client, err := notarynet.NewClient(ctx, d.srv.Addr(), notarynet.WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	for _, chain := range chains {
		if err := client.Observe(ctx, chain, 993); err != nil {
			t.Fatal(err)
		}
	}
	_ = client.Close()
	// Simulated crash: tear down the listener so the port frees, but skip
	// the final checkpoint entirely.
	_ = d.srv.Close()

	d2 := bootTestDaemon(t, dir)
	defer d2.Close()
	if got := d2.db.Notary().Sessions(); got != int64(len(chains)) {
		t.Fatalf("recovered sessions = %d, want %d (journal replay)", got, len(chains))
	}
	if !d2.db.Notary().HasRecord(chains[0][0]) {
		t.Fatal("acknowledged leaf missing after crash recovery")
	}
}

func boot2(t *testing.T, cfg config) *daemon {
	t.Helper()
	d, err := boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonPrefeedOnlyWhenEmpty: a recovered non-empty database must not
// be prefed again.
func TestDaemonPrefeedOnlyWhenEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "notary-data")
	d := boot2(t, config{addr: "127.0.0.1:0", dataDir: dir, prefeed: 60, seed: 3})
	fed := d.db.Notary().Sessions()
	if fed == 0 {
		t.Fatal("prefeed produced no sessions")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := boot2(t, config{addr: "127.0.0.1:0", dataDir: dir, prefeed: 60, seed: 3})
	defer d2.Close()
	if got := d2.db.Notary().Sessions(); got != fed {
		t.Fatalf("sessions after reboot = %d, want %d (no double prefeed)", got, fed)
	}
}

// TestDaemonPeriodicCheckpoint: with a short interval, generations must
// advance without any writes — the checkpoint loop is alive.
func TestDaemonPeriodicCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "notary-data")
	d := bootTestDaemon(t, dir)
	defer d.Close()
	start := d.db.Gen()
	deadline := time.Now().Add(10 * time.Second)
	for d.db.Gen() == start {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint within 10s at a 50ms interval")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonInMemoryMode: without -data the daemon serves exactly as
// before, with no files written.
func TestDaemonInMemoryMode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := boot2(t, config{addr: "127.0.0.1:0", prefeed: 0})
	defer d.Close()
	if d.db != nil {
		t.Fatal("in-memory mode should have no durable DB")
	}
	client, err := notarynet.NewClient(ctx, d.srv.Addr(), notarynet.WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	chains := lifecycleChains(t, 1)
	if err := client.Observe(ctx, chains[0], 443); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", stats.Sessions)
	}
}
