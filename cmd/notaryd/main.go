// Command notaryd runs the Notary as a network service, the role the ICSI
// Certificate Notary plays in the paper's pipeline (§4.2): sensors stream
// observed TLS chains in; analysis clients query records and run store
// validation remotely.
//
// Usage:
//
//	notaryd [-addr 127.0.0.1:7511] [-prefeed 20000] [-seed 1] [-debug 127.0.0.1:7581]
//
// -prefeed N seeds the database from an N-leaf simulated TLS internet so a
// fresh daemon immediately answers validation queries; 0 starts empty.
// -debug mounts the observability snapshot (ingest counters, sensor
// gauges) as JSON on an HTTP listener.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("notaryd: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7511", "listen address")
		prefeed = flag.Int("prefeed", 20000, "pre-feed the database from an N-leaf simulated internet (0 = start empty)")
		seed    = flag.Int64("seed", 1, "seed for the pre-feed world")
		debug   = flag.String("debug", "", "serve the observability snapshot over HTTP on this address (empty: disabled)")
	)
	flag.Parse()
	if err := run(*addr, *prefeed, *seed, *debug); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, prefeed int, seed int64, debug string) error {
	n := notary.New(certgen.Epoch)
	if prefeed > 0 {
		log.Printf("pre-feeding from a %d-leaf simulated TLS internet (seed %d)...", prefeed, seed)
		world, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: prefeed})
		if err != nil {
			return err
		}
		tlsnet.Feed(world, n)
		log.Print(n.String())
	}

	srv, err := notarynet.NewServer(n, addr)
	if err != nil {
		return err
	}
	log.Printf("serving on %s", srv.Addr())
	if debug != "" {
		ln, err := obs.ServeDebug(debug, srv.Observer())
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("debug listening on %s", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	return srv.Close()
}
