// Command notaryd runs the Notary as a network service, the role the ICSI
// Certificate Notary plays in the paper's pipeline (§4.2): sensors stream
// observed TLS chains in; analysis clients query records and run store
// validation remotely.
//
// Usage:
//
//	notaryd [-addr 127.0.0.1:7511] [-data DIR] [-checkpoint 5m]
//	        [-prefeed 20000] [-seed 1] [-debug 127.0.0.1:7581] [-shards N]
//
// -shards N (N > 1) runs the database as a sharded cluster: observations
// are routed across N notary shards by leaf content address, each with its
// own chain cache (and, with -data, its own WAL and snapshot generation
// under DIR/shard-NNN), and queries are answered from the shard-ordered
// merged view — byte-identical to what a single-shard daemon would serve.
//
// -data DIR makes the database durable: on boot the daemon recovers from
// DIR (newest checksummed snapshot plus write-ahead-journal replay), every
// accepted observation is journaled and fsynced before its acknowledgment
// is sent, a checkpoint runs every -checkpoint interval, and a graceful
// shutdown (SIGINT) drains connections and checkpoints the final state.
// Without -data the database is in-memory only, as before.
//
// -prefeed N seeds the database from an N-leaf simulated TLS internet so a
// fresh daemon immediately answers validation queries; 0 starts empty.
// With -data, the prefeed runs only when recovery produced an empty
// database. -debug mounts the observability snapshot (ingest counters,
// sensor gauges, journal/checkpoint counters) as JSON on an HTTP listener.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/obs"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("notaryd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7511", "listen address")
		dataDir    = flag.String("data", "", "durable data directory (empty: in-memory only)")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "periodic checkpoint interval with -data (0 disables)")
		prefeed    = flag.Int("prefeed", 20000, "pre-feed the database from an N-leaf simulated internet (0 = start empty)")
		seed       = flag.Int64("seed", 1, "seed for the pre-feed world")
		debug      = flag.String("debug", "", "serve the observability snapshot over HTTP on this address (empty: disabled)")
		shards     = flag.Int("shards", 1, "run N notary shards behind a consistent-hash router (1 = unsharded)")
	)
	flag.Parse()
	cfg := config{
		addr:       *addr,
		dataDir:    *dataDir,
		checkpoint: *checkpoint,
		prefeed:    *prefeed,
		seed:       *seed,
		debug:      *debug,
		shards:     *shards,
	}
	d, err := boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
}

// config collects the daemon's knobs — a plain struct so the lifecycle
// tests can boot daemons without touching flags.
type config struct {
	addr       string
	dataDir    string
	checkpoint time.Duration
	prefeed    int
	seed       int64
	debug      string
	shards     int
}

// daemon is one running notaryd: the (possibly durable) database, the
// network server and the optional debug listener, with Close tearing them
// down in drain order.
type daemon struct {
	srv     *notarynet.Server
	db      *notary.DB           // nil when sharded or in-memory only
	cluster *notaryshard.Cluster // nil when unsharded
	durable bool
	debugLn interface{ Close() error }

	stopCheckpoint chan struct{}
	checkpointDone sync.WaitGroup
	closeOnce      sync.Once
	closeErr       error
}

// checkpointStore runs one checkpoint against whichever store the daemon
// holds; a no-op for a pure in-memory daemon.
func (d *daemon) checkpointStore() error {
	if !d.durable {
		return nil
	}
	if d.cluster != nil {
		return d.cluster.Checkpoint()
	}
	return d.db.Checkpoint()
}

// boot builds a daemon from cfg: recover (or create) the database, prefeed
// if empty, start serving, start the checkpoint loop.
func boot(cfg config) (*daemon, error) {
	observer := obs.New()
	durable := cfg.dataDir != ""
	var (
		n       *notary.Notary
		db      *notary.DB
		cluster *notaryshard.Cluster
		err     error
	)
	if cfg.shards > 1 {
		if durable {
			cluster, err = notaryshard.Open(faultfs.Disk, cfg.dataDir, certgen.Epoch, cfg.shards,
				notaryshard.WithObserver(observer))
			if err != nil {
				return nil, err
			}
			log.Printf("recovered %d shards from %s (%d sessions)", cfg.shards, cfg.dataDir, cluster.Sessions())
		} else {
			cluster, err = notaryshard.New(certgen.Epoch, cfg.shards, notaryshard.WithObserver(observer))
			if err != nil {
				return nil, err
			}
		}
	} else if durable {
		db, err = notary.Open(faultfs.Disk, cfg.dataDir, certgen.Epoch, notary.WithObserver(observer))
		if err != nil {
			return nil, err
		}
		n = db.Notary()
		log.Printf("recovered %s from %s (generation %d)", n.String(), cfg.dataDir, db.Gen())
	} else {
		n = notary.New(certgen.Epoch, notary.WithObserver(observer))
	}
	closeStore := func() {
		if cluster != nil {
			_ = cluster.Close()
		}
		if db != nil {
			_ = db.Close()
		}
	}

	empty := false
	if cluster != nil {
		empty = cluster.Sessions() == 0 && cluster.NumUnique() == 0
	} else {
		empty = n.Sessions() == 0 && n.NumUnique() == 0
	}
	if cfg.prefeed > 0 && empty {
		log.Printf("pre-feeding from a %d-leaf simulated TLS internet (seed %d)...", cfg.prefeed, cfg.seed)
		world, err := tlsnet.NewWorld(tlsnet.Config{Seed: cfg.seed, NumLeaves: cfg.prefeed})
		if err != nil {
			closeStore()
			return nil, err
		}
		if cluster != nil {
			err = tlsnet.FeedTo(world, cluster)
		} else {
			tlsnet.Feed(world, n)
		}
		if err != nil {
			closeStore()
			return nil, err
		}
		// The single-node prefeed wrote straight to memory; one checkpoint
		// makes it durable before anything is served. (The sharded prefeed
		// journals as it goes; its checkpoint just folds the WAL.)
		if durable {
			var cerr error
			if cluster != nil {
				cerr = cluster.Checkpoint()
			} else {
				cerr = db.Checkpoint()
			}
			if cerr != nil {
				closeStore()
				return nil, cerr
			}
		}
	}

	srvOpts := []notarynet.Option{notarynet.WithObserver(observer)}
	var view notarynet.View
	if cluster != nil {
		// The cluster is its own ingester: it routes, and each shard
		// journals when durable.
		view = cluster
	} else {
		view = n
		if db != nil {
			// Route writes through the journal: the network acknowledgment
			// and the fsync acknowledgment become one and the same.
			srvOpts = append(srvOpts, notarynet.WithIngester(db))
		}
	}
	srv, err := notarynet.NewServer(view, cfg.addr, srvOpts...)
	if err != nil {
		closeStore()
		return nil, err
	}
	log.Printf("serving on %s", srv.Addr())

	d := &daemon{srv: srv, db: db, cluster: cluster, durable: durable, stopCheckpoint: make(chan struct{})}
	if cfg.debug != "" {
		snapFn := srv.Observer().Snapshot
		if cluster != nil {
			// The cluster snapshot merges the shared router observer with
			// every shard's private one.
			snapFn = cluster.Snapshot
		}
		ln, err := obs.ServeDebugFunc(cfg.debug, snapFn)
		if err != nil {
			_ = d.Close()
			return nil, err
		}
		d.debugLn = ln
		log.Printf("debug listening on %s", ln.Addr())
	}

	if durable && cfg.checkpoint > 0 {
		d.checkpointDone.Add(1)
		go func() {
			defer d.checkpointDone.Done()
			ticker := time.NewTicker(cfg.checkpoint)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := d.checkpointStore(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				case <-d.stopCheckpoint:
					return
				}
			}
		}()
	}
	return d, nil
}

// Close drains the daemon: stop the checkpoint loop, stop accepting and
// finish in-flight requests, then checkpoint the final state and release
// the journal. Safe to call more than once.
func (d *daemon) Close() error {
	d.closeOnce.Do(func() {
		close(d.stopCheckpoint)
		d.checkpointDone.Wait()
		if d.debugLn != nil {
			_ = d.debugLn.Close()
		}
		err := d.srv.Close()
		// After the drain: every acknowledged observation is already
		// fsynced in the journal; the final checkpoint folds them into
		// one clean snapshot generation.
		if d.cluster != nil {
			if cerr := d.cluster.Close(); err == nil {
				err = cerr
			}
		}
		if d.db != nil {
			if cerr := d.db.Close(); err == nil {
				err = cerr
			}
		}
		d.closeErr = err
	})
	return d.closeErr
}
