// Command obsget scrapes a daemon's observability debug endpoint (the
// -debug listener on collectd, notaryd, or tapd) and prints the snapshot
// JSON. With -check it additionally validates that the payload is a
// well-formed snapshot — counters, gauges, histograms, spans — and exits
// non-zero otherwise, which is what the metrics-smoke verify stage runs.
//
// Usage:
//
//	obsget [-check] http://127.0.0.1:7580/debug/vars
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsget: ")
	check := flag.Bool("check", false, "validate the payload is a well-formed snapshot")
	timeout := flag.Duration("timeout", 5*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsget [-check] [-timeout 5s] <url>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *check, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(url string, check bool, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return err
	}
	if check {
		var snap struct {
			Counters   map[string]int64           `json:"counters"`
			Gauges     map[string]int64           `json:"gauges"`
			Histograms map[string]json.RawMessage `json:"histograms"`
			Spans      map[string]json.RawMessage `json:"spans"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			return fmt.Errorf("payload is not a snapshot: %w", err)
		}
		if snap.Counters == nil && snap.Gauges == nil && snap.Histograms == nil && snap.Spans == nil {
			return fmt.Errorf("payload has none of the snapshot sections")
		}
	}
	_, err = os.Stdout.Write(append(body, '\n'))
	return err
}
