// Command collectd runs the measurement collection back end: the service
// Netalyzr sessions submit their reports to (§4.1). It prints the live
// aggregate on SIGINT.
//
// Usage:
//
//	collectd [-addr 127.0.0.1:7512] [-keep]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"tangledmass/internal/collect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collectd: ")
	var (
		addr = flag.String("addr", "127.0.0.1:7512", "listen address")
		keep = flag.Bool("keep", false, "retain full reports in memory (not just aggregates)")
	)
	flag.Parse()
	if err := run(*addr, *keep); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, keep bool) error {
	srv, err := collect.Serve(addr, keep)
	if err != nil {
		return err
	}
	log.Printf("collecting on %s", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	sum := srv.Summary()
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling final aggregate: %w", err)
	}
	log.Printf("final aggregate:\n%s", out)
	return srv.Close()
}
