// Command collectd runs the measurement collection back end: the service
// Netalyzr sessions submit their reports to (§4.1). It prints the live
// aggregate on SIGINT.
//
// Usage:
//
//	collectd [-addr 127.0.0.1:7512] [-keep] [-debug 127.0.0.1:7582]
//
// -debug mounts the observability snapshot (submit/dedupe/reject counters,
// connection gauges) as JSON on an HTTP listener.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"tangledmass/internal/collect"
	"tangledmass/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collectd: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:7512", "listen address")
		keep  = flag.Bool("keep", false, "retain full reports in memory (not just aggregates)")
		debug = flag.String("debug", "", "serve the observability snapshot over HTTP on this address (empty: disabled)")
	)
	flag.Parse()
	if err := run(*addr, *keep, *debug); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, keep bool, debug string) error {
	opts := []collect.Option{}
	if keep {
		opts = append(opts, collect.WithKeepReports())
	}
	srv, err := collect.NewServer(addr, opts...)
	if err != nil {
		return err
	}
	log.Printf("collecting on %s", srv.Addr())
	if debug != "" {
		ln, err := obs.ServeDebug(debug, srv.Observer())
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("debug listening on %s", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	sum := srv.Summary()
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling final aggregate: %w", err)
	}
	log.Printf("final aggregate:\n%s", out)
	return srv.Close()
}
