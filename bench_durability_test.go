package tangledmass

// Durability benchmarks: the cost of the notary's write-ahead journal and
// of crash recovery, both over the deterministic in-memory filesystem so
// the numbers measure framing, checksumming, and replay — not the host
// disk. Sweeps alongside the Table/Figure benchmarks into the BENCH JSON
// record; the verify bench-gate does not gate on them (wall-clock for I/O
// paths is machine-dependent), they are tracked for trend only.

import (
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
)

// durabilityBatch builds a 64-observation batch from the shared fixture
// world — the unit of group commit the daemon sees under load.
func durabilityBatch(b *testing.B) []notary.Observation {
	b.Helper()
	f := benchFixtures(b)
	leaves := f.world.Leaves()
	if len(leaves) < 64 {
		b.Fatal("fixture world too small")
	}
	batch := make([]notary.Observation, 64)
	for i := range batch {
		l := leaves[i]
		batch[i] = notary.Observation{Chain: l.Chain, Port: l.Port, SeenAt: l.SeenAt}
	}
	return batch
}

// BenchmarkWALAppend measures one group commit: encode the batch into
// length-prefixed CRC-framed journal records, a single write, a single
// sync, then the in-memory apply.
func BenchmarkWALAppend(b *testing.B) {
	batch := durabilityBatch(b)
	mem := faultfs.NewMem(1)
	db, err := notary.Open(mem, "data", certgen.Epoch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures a cold boot over a dirty directory: load the
// checksummed snapshot, replay a 1,024-record journal, and cut the boot
// checkpoint. The dirty state is rebuilt outside the timer each iteration.
func BenchmarkRecovery(b *testing.B) {
	batch := durabilityBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mem := faultfs.NewMem(1)
		db, err := notary.Open(mem, "data", certgen.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1024/len(batch); j++ {
			if err := db.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
		// No Close: the final checkpoint is skipped, so the journal —
		// not a snapshot — carries the records into the next boot.
		mem.Reboot()
		b.StartTimer()
		rdb, err := notary.Open(mem, "data", certgen.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		if rdb.Notary().Sessions() == 0 {
			b.Fatal("recovery lost the journal")
		}
	}
}
