module tangledmass

go 1.22
