#!/bin/sh
# verify.sh is the repo's correctness gate: build, vet, the repo-aware
# static-analysis suite, and the race-enabled tests, in that order. Each
# stage must pass before the next runs; the script fails on the first
# broken stage.
set -eu

cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tangledlint ./..."
go run ./cmd/tangledlint ./...

echo "==> metrics-smoke: debug endpoint sanity"
./scripts/metrics_smoke.sh

echo "==> chaos: campaign under injected faults"
go test -race -run TestChaosCampaignDeterministic ./internal/campaign/

echo "==> go test -race ./..."
go test -race ./...

echo "verify: all gates passed"
