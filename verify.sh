#!/bin/sh
# verify.sh is the repo's correctness gate: build, vet, the repo-aware
# static-analysis suite, and the race-enabled tests, in that order. Each
# stage must pass before the next runs; the script fails on the first
# broken stage.
set -eu

cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tangledlint ./..."
go run ./cmd/tangledlint -baseline lint-baseline.txt ./...

echo "==> metrics-smoke: debug endpoint sanity"
./scripts/metrics_smoke.sh

echo "==> dataset-smoke: interchange round-trip + corruption rejection"
./scripts/dataset_smoke.sh

echo "==> chaos: campaign under injected faults"
go test -race -run TestChaosCampaignDeterministic ./internal/campaign/

# The crash gate: re-run the notary ingest, crashing after every write/
# sync/rename boundary, and prove recovery always yields exactly the
# acknowledged prefix. CRASH_GATE=off skips the dedicated stage (the sweep
# still runs inside the full test pass below unless that is also trimmed).
if [ "${CRASH_GATE:-on}" = "off" ]; then
	echo "==> crash: skipped (CRASH_GATE=off)"
else
	echo "==> crash: notary crashpoint recovery sweep"
	go test -race -run TestCrashpointSweep ./internal/notary/
fi

echo "==> go test -race ./..."
go test -race ./...

# The bench-gate compares the Table/Figure benchmarks against the committed
# serial baseline and fails on a >25% ns/op regression or a >25% allocs/op
# regression (allocations are deterministic, so the alloc gate is stable
# even on loaded machines). BENCH_GATE=off skips it (useful on loaded or
# throttled machines where timings are meaningless).
if [ "${BENCH_GATE:-on}" = "off" ]; then
	echo "==> bench-gate: skipped (BENCH_GATE=off)"
else
	echo "==> bench-gate: Table/Figure vs BENCH_pr8.json (tolerance 25% time, 25% allocs)"
	go test -run '^$' -bench 'Table|Figure' -benchmem -benchtime "${BENCH_TIME:-3x}" . |
		go run ./cmd/benchjson gate -baseline BENCH_pr8.json -match 'Table|Figure' -tolerance 0.25 -alloc-tolerance 0.25
fi

echo "verify: all gates passed"
