#!/bin/sh
# verify.sh is the repo's correctness gate: build, vet, the repo-aware
# static-analysis suite, and the race-enabled tests, in that order. Each
# stage must pass before the next runs; the script fails on the first
# broken stage.
set -eu

cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tangledlint ./..."
go run ./cmd/tangledlint -baseline lint-baseline.txt ./...

echo "==> metrics-smoke: debug endpoint sanity"
./scripts/metrics_smoke.sh

echo "==> dataset-smoke: interchange round-trip + corruption rejection"
./scripts/dataset_smoke.sh

echo "==> chaos: campaign under injected faults"
go test -race -run TestChaosCampaignDeterministic ./internal/campaign/

# The crash gate: re-run the notary ingest, crashing after every write/
# sync/rename boundary, and prove recovery always yields exactly the
# acknowledged prefix. CRASH_GATE=off skips the dedicated stage (the sweep
# still runs inside the full test pass below unless that is also trimmed).
if [ "${CRASH_GATE:-on}" = "off" ]; then
	echo "==> crash: skipped (CRASH_GATE=off)"
else
	echo "==> crash: notary crashpoint recovery sweep"
	go test -race -run TestCrashpointSweep ./internal/notary/
fi

echo "==> go test -race ./..."
go test -race ./...

# The bench-gate compares the Table/Figure benchmarks against the committed
# serial baseline and fails on a >25% ns/op regression or a >25% allocs/op
# regression (allocations are deterministic, so the alloc gate is stable
# even on loaded machines). BENCH_GATE=off skips it (useful on loaded or
# throttled machines where timings are meaningless). BENCH_BASELINE picks
# a different committed baseline file.
BENCH_BASELINE=${BENCH_BASELINE:-BENCH_pr10.json}
if [ "${BENCH_GATE:-on}" = "off" ]; then
	echo "==> bench-gate: skipped (BENCH_GATE=off)"
else
	echo "==> bench-gate: Table/Figure vs $BENCH_BASELINE (tolerance 25% time, 25% allocs)"
	go test -run '^$' -bench 'Table|Figure' -benchmem -benchtime "${BENCH_TIME:-3x}" . |
		go run ./cmd/benchjson gate -baseline "$BENCH_BASELINE" -match 'Table|Figure' -tolerance 0.25 -alloc-tolerance 0.25
fi

# The SLO gate: boot a sharded notary topology, drive a bounded loadgen
# burst through the wire protocol, and fail on a p99 ingest latency or
# error-budget violation (objectives and sizes via SLO_* env knobs; see
# scripts/slo_gate.sh). SLO_GATE=off skips it — shared CI runners have
# noisy latency, so like the bench gate the hard thresholds stay local and
# CI runs a relaxed smoke instead.
if [ "${SLO_GATE:-on}" = "off" ]; then
	echo "==> slo-gate: skipped (SLO_GATE=off)"
else
	echo "==> slo-gate: loadgen p99/error-budget SLO"
	./scripts/slo_gate.sh
fi

echo "verify: all gates passed"
