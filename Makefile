# Build and verification entry points. `make verify` is the tier-1 gate:
# it chains build, vet, the tangledlint static-analysis suite, and the
# race-enabled tests via verify.sh.

GO ?= go

.PHONY: build test lint vet verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tangledlint ./...

test:
	$(GO) test -race ./...

verify:
	./verify.sh
