# Build and verification entry points. `make verify` is the tier-1 gate:
# it chains build, vet, the tangledlint static-analysis suite, and the
# race-enabled tests via verify.sh.

GO ?= go

.PHONY: build test lint vet chaos metrics-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tangledlint ./...

test:
	$(GO) test -race ./...

# The chaos gate: the full pipeline under an injected fault plan, asserting
# determinism, graceful degradation, and unskewed aggregates.
chaos:
	$(GO) test -race -v -run TestChaosCampaignDeterministic ./internal/campaign/

# The observability gate: boot collectd, scrape its debug endpoint, and
# check the payload is well-formed snapshot JSON.
metrics-smoke:
	./scripts/metrics_smoke.sh

verify:
	./verify.sh
