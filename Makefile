# Build and verification entry points. `make verify` is the tier-1 gate:
# it chains build, vet, the tangledlint static-analysis suite, and the
# race-enabled tests via verify.sh.

GO ?= go

# The committed benchmark baseline the bench gate compares against; thread
# a different file with `make bench-gate BENCH_BASELINE=BENCH_prX.json`.
BENCH_BASELINE ?= BENCH_pr10.json

.PHONY: build test lint lint-baseline vet chaos crash metrics-smoke dataset-smoke bench bench-gate slo-gate verify ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tangledlint -baseline lint-baseline.txt ./...

# Regenerate the incremental-adoption baseline. The committed file is kept
# empty (header only): new-rule findings are fixed or suppressed inline
# with a reasoned //lint:ignore, and the baseline exists for the window
# where a new rule lands before its findings are worked off.
lint-baseline:
	$(GO) run ./cmd/tangledlint -write-baseline lint-baseline.txt ./...

test:
	$(GO) test -race ./...

# The chaos gate: the full pipeline under an injected fault plan, asserting
# determinism, graceful degradation, and unskewed aggregates.
chaos:
	$(GO) test -race -v -run TestChaosCampaignDeterministic ./internal/campaign/

# The crash gate: crash the notary after every write/sync/rename boundary
# of a full ingest and prove recovery yields exactly the acknowledged
# prefix, byte-for-byte, for three seeds.
crash:
	$(GO) test -race -v -run TestCrashpointSweep ./internal/notary/

# The observability gate: boot collectd, scrape its debug endpoint, and
# check the payload is well-formed snapshot JSON.
metrics-smoke:
	./scripts/metrics_smoke.sh

# The interchange gate: export a fleet, convert JSONL -> columnar, verify
# both directories, and check the verifier rejects a truncated file.
dataset-smoke:
	./scripts/dataset_smoke.sh

# Full benchmark sweep with -benchmem, emitting a BENCH JSON record.
bench:
	BENCH_BASELINE=$(BENCH_BASELINE) ./scripts/bench.sh

# Compare the Table/Figure benchmarks against the committed serial baseline,
# failing on a >25% ns/op regression.
bench-gate:
	$(GO) test -run '^$$' -bench 'Table|Figure' -benchmem -benchtime 3x . | \
		$(GO) run ./cmd/benchjson gate -baseline $(BENCH_BASELINE) -match 'Table|Figure' -tolerance 0.25 -alloc-tolerance 0.25

# The SLO gate: a bounded loadgen burst against a sharded in-process
# notary, failing on a p99 ingest latency or error-budget violation.
# Sizes and objectives via SLO_* env knobs (see scripts/slo_gate.sh).
slo-gate:
	./scripts/slo_gate.sh

verify:
	BENCH_BASELINE=$(BENCH_BASELINE) ./verify.sh

# Exactly what the CI verify job runs, for reproducing CI results locally:
# the full verify chain with the machine-sensitive gates off (CI runners
# have noisy timings), one iteration of every benchmark, and a small
# relaxed-threshold loadgen smoke.
ci:
	BENCH_GATE=off SLO_GATE=off ./verify.sh
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/tangled loadgen -shards 2 -sessions 600 -clients 4 -batch 32 -leaves 120 -p99-ms 2000 -error-budget 0.02
