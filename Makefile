# Build and verification entry points. `make verify` is the tier-1 gate:
# it chains build, vet, the tangledlint static-analysis suite, and the
# race-enabled tests via verify.sh.

GO ?= go

.PHONY: build test lint lint-baseline vet chaos crash metrics-smoke dataset-smoke bench bench-gate verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/tangledlint -baseline lint-baseline.txt ./...

# Regenerate the incremental-adoption baseline. The committed file is kept
# empty (header only): new-rule findings are fixed or suppressed inline
# with a reasoned //lint:ignore, and the baseline exists for the window
# where a new rule lands before its findings are worked off.
lint-baseline:
	$(GO) run ./cmd/tangledlint -write-baseline lint-baseline.txt ./...

test:
	$(GO) test -race ./...

# The chaos gate: the full pipeline under an injected fault plan, asserting
# determinism, graceful degradation, and unskewed aggregates.
chaos:
	$(GO) test -race -v -run TestChaosCampaignDeterministic ./internal/campaign/

# The crash gate: crash the notary after every write/sync/rename boundary
# of a full ingest and prove recovery yields exactly the acknowledged
# prefix, byte-for-byte, for three seeds.
crash:
	$(GO) test -race -v -run TestCrashpointSweep ./internal/notary/

# The observability gate: boot collectd, scrape its debug endpoint, and
# check the payload is well-formed snapshot JSON.
metrics-smoke:
	./scripts/metrics_smoke.sh

# The interchange gate: export a fleet, convert JSONL -> columnar, verify
# both directories, and check the verifier rejects a truncated file.
dataset-smoke:
	./scripts/dataset_smoke.sh

# Full benchmark sweep with -benchmem, emitting a BENCH JSON record.
bench:
	./scripts/bench.sh

# Compare the Table/Figure benchmarks against the committed serial baseline,
# failing on a >25% ns/op regression.
bench-gate:
	$(GO) test -run '^$$' -bench 'Table|Figure' -benchmem -benchtime 3x . | \
		$(GO) run ./cmd/benchjson gate -baseline BENCH_pr8.json -match 'Table|Figure' -tolerance 0.25 -alloc-tolerance 0.25

verify:
	./verify.sh
