#!/bin/sh
# slo_gate.sh is the ingest-latency SLO gate: boot a sharded in-process
# notary topology, drive a bounded loadgen burst through the real wire
# protocol (batched observes, idempotent retries), and fail unless the
# measured p99 ingest latency and the request error rate stay inside the
# committed objectives. The machine-readable verdict (config, latency
# distribution, per-shard p99s, violations) is written as SLO JSON; the
# committed SLO_pr9.json is the reference record of the gate passing.
#
# Usage:
#   scripts/slo_gate.sh [output.json]
#
# Knobs (environment):
#   SLO_SESSIONS      observations to send (default 4000)
#   SLO_SHARDS        shard count of the in-process topology (default 4)
#   SLO_CLIENTS       concurrent loadgen clients (default 8)
#   SLO_BATCH         observations per request (default 64)
#   SLO_LEAVES        synthetic leaf population (default 400)
#   SLO_P99_MS        p99 objective in milliseconds (default 150)
#   SLO_ERROR_BUDGET  tolerated request error rate (default 0)
#   SLO_FAULT_SEED    inject dial faults with this seed (default 0 = none)
#   SLO_LABEL         label recorded in the JSON document (default pr9)
#   VERIFY_ARTIFACTS_DIR  if set, the SLO document is also copied there so
#                     CI can upload it when the gate (or any stage) fails
set -eu

cd "$(dirname "$0")/.."

out=${1:-}
sessions=${SLO_SESSIONS:-4000}
shards=${SLO_SHARDS:-4}
clients=${SLO_CLIENTS:-8}
batch=${SLO_BATCH:-64}
leaves=${SLO_LEAVES:-400}
p99=${SLO_P99_MS:-150}
budget=${SLO_ERROR_BUDGET:-0}
fault_seed=${SLO_FAULT_SEED:-0}
label=${SLO_LABEL:-pr9}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM
[ -n "$out" ] || out="$workdir/SLO_pr9.json"

echo "==> building tangled"
go build -o "$workdir/tangled" ./cmd/tangled

echo "==> loadgen: $sessions sessions, $shards shards, $clients clients, batch $batch (p99 <= ${p99}ms, error budget $budget)"
status=0
"$workdir/tangled" loadgen \
    -shards "$shards" -sessions "$sessions" -clients "$clients" \
    -batch "$batch" -leaves "$leaves" -fault-seed "$fault_seed" \
    -p99-ms "$p99" -error-budget "$budget" \
    -label "$label" -json "$out" || status=$?

# Preserve the SLO document for CI artifact upload whatever the verdict.
if [ -n "${VERIFY_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$VERIFY_ARTIFACTS_DIR"
    cp "$out" "$VERIFY_ARTIFACTS_DIR/SLO_${label}.json" 2>/dev/null || true
fi

if [ "$status" -ne 0 ]; then
    echo "slo-gate: FAILED (see $out)" >&2
    exit "$status"
fi
echo "slo-gate: SLO met"
