#!/bin/sh
# dataset_smoke.sh exercises the dataset interchange path end to end:
# export a small fleet as the JSONL v1 format, convert it to the columnar
# v2 format, integrity-check both directories with `tangled dataset
# verify`, and prove the verifier actually rejects damage by truncating
# the columnar file. It is the `make dataset-smoke` verify stage: proof
# that the CLI surface and the checksummed format agree with what the
# README documents.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> building tangled"
go build -o "$workdir/tangled" ./cmd/tangled

echo "==> fleet export (jsonl)"
"$workdir/tangled" fleet -scale 0.05 -export "$workdir/jsonl" >/dev/null

echo "==> dataset convert jsonl -> columnar"
"$workdir/tangled" dataset convert -format columnar "$workdir/jsonl" "$workdir/col"

echo "==> dataset verify (both formats)"
"$workdir/tangled" dataset verify "$workdir/jsonl"
"$workdir/tangled" dataset verify "$workdir/col"

echo "==> dataset verify rejects a truncated columnar file"
mkdir "$workdir/corrupt"
col="$workdir/col/handsets.col"
half=$(($(wc -c <"$col") / 2))
head -c "$half" "$col" >"$workdir/corrupt/handsets.col"
if "$workdir/tangled" dataset verify "$workdir/corrupt" >/dev/null 2>&1; then
	echo "dataset-smoke: verifier accepted a truncated file" >&2
	exit 1
fi

echo "dataset-smoke: ok"
