#!/bin/sh
# metrics_smoke.sh boots collectd with its observability debug endpoint,
# scrapes the endpoint with obsget -check, and fails unless the payload is
# well-formed snapshot JSON. It is the `make metrics-smoke` verify stage:
# proof that the debug surface actually serves what the README documents.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

echo "==> building collectd and obsget"
go build -o "$workdir/collectd" ./cmd/collectd
go build -o "$workdir/obsget" ./cmd/obsget

echo "==> booting collectd with a debug listener"
"$workdir/collectd" -addr 127.0.0.1:0 -debug 127.0.0.1:0 >"$workdir/collectd.log" 2>&1 &
pid=$!

# collectd logs "debug listening on <addr>" once the endpoint is up.
debug_addr=""
for _ in $(seq 1 50); do
    debug_addr=$(sed -n 's/^collectd: debug listening on //p' "$workdir/collectd.log")
    [ -n "$debug_addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$workdir/collectd.log"; exit 1; }
    sleep 0.1
done
if [ -z "$debug_addr" ]; then
    echo "metrics-smoke: collectd never announced its debug listener" >&2
    cat "$workdir/collectd.log" >&2
    exit 1
fi

echo "==> scraping http://$debug_addr/debug/vars"
"$workdir/obsget" -check "http://$debug_addr/debug/vars" >"$workdir/snapshot.json"
head -c 400 "$workdir/snapshot.json"; echo

echo "metrics-smoke: debug endpoint serves well-formed snapshot JSON"
