#!/bin/sh
# bench.sh runs the full benchmark sweep with -benchmem and emits a
# machine-readable JSON record (ns/op, B/op, allocs/op per benchmark) via
# cmd/benchjson. The committed BENCH_pr10.json is the serial baseline the
# verify bench-gate compares against.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Knobs (environment):
#   BENCH_TIME      -benchtime value (default 3x: heavy analysis benchmarks
#                   run in hundreds of ms, so a few iterations are stable)
#   BENCH_PATTERN   -bench pattern (default ".")
#   BENCH_BASELINE  baseline filename the verify bench-gate compares
#                   against; used as the default output path and label
#                   source (default BENCH_pr10.json)
#   BENCH_LABEL     label stored in the JSON record (default: derived from
#                   the baseline name, e.g. BENCH_pr10.json -> "pr10")
set -eu

cd "$(dirname "$0")/.."

baseline=${BENCH_BASELINE:-BENCH_pr10.json}
out=${1:-$baseline}
benchtime=${BENCH_TIME:-3x}
pattern=${BENCH_PATTERN:-.}
label=${BENCH_LABEL:-$(basename "$baseline" .json | sed 's/^BENCH_//')}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> go test -bench '$pattern' -benchmem -benchtime $benchtime ."
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$workdir/bench.out"

echo "==> emitting $out"
go run ./cmd/benchjson emit -label "$label" <"$workdir/bench.out" >"$out"
echo "bench: wrote $(grep -c 'ns/op' "$workdir/bench.out") benchmark results to $out"
