// Notaryservice: the §4.2 deployment in miniature, over real TCP. A Notary
// server holds the certificate database; a sensor streams observed chains
// to it; an analysis client then runs the Table 3 validation and a §8
// pruning proposal remotely.
//
//	go run ./examples/notaryservice
package main

import (
	"context"
	"fmt"
	"log"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	u := cauniverse.Default()

	// The central Notary service, started empty.
	ctx := context.Background()
	db := notary.New(certgen.Epoch)
	srv, err := notarynet.NewServer(db, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("notary service on %s\n", srv.Addr())

	// A sensor at a participating network: it observes the simulated TLS
	// internet and streams every chain upstream.
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 1, Universe: u, NumLeaves: 3000})
	if err != nil {
		log.Fatal(err)
	}
	sensor, err := notarynet.NewClient(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer sensor.Close()
	for _, leaf := range world.Leaves() {
		if err := sensor.Observe(ctx, leaf.Chain, leaf.Port); err != nil {
			log.Fatal(err)
		}
	}
	stats, err := sensor.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor streamed %d sessions; database holds %d unique certs (%d unexpired)\n",
		stats.Sessions, stats.Unique, stats.Unexpired)

	// An analysis client: validate the AOSP stores remotely (Table 3) and
	// count prunable roots (§8).
	client, err := notarynet.NewClient(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("\nremote validation (Table 3 shape):")
	for _, v := range cauniverse.AOSPVersions() {
		store := u.AOSP(v)
		res, err := client.Validate(ctx, store)
		if err != nil {
			log.Fatal(err)
		}
		zero := 0
		for _, c := range res.PerRoot {
			if c == 0 {
				zero++
			}
		}
		fmt.Printf("  AOSP %s: %5d certificates validated; %d of %d roots validate nothing (%.0f%%)\n",
			v, res.Validated, zero, store.Len(), 100*float64(zero)/float64(store.Len()))
	}
}
