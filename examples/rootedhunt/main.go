// Rootedhunt: reproduce §6. Simulate rooting a handset, install the Freedom
// app (which silently adds the "CRAZY HOUSE" root to the system store), then
// run the rooted-exclusive detection over a generated fleet to recover
// Table 5.
//
//	go run ./examples/rootedhunt
package main

import (
	"crypto/x509"
	"errors"
	"fmt"
	"log"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/device"
	"tangledmass/internal/population"
	"tangledmass/internal/report"
)

func main() {
	log.SetFlags(0)
	u := cauniverse.Default()

	// Part 1: the mechanics on a single handset.
	dev := device.New(device.Profile{
		Model: "Galaxy SIII", Manufacturer: "SAMSUNG", Operator: "SPRINT", Country: "US", Version: "4.1",
	}, u.AOSP("4.1"), nil)

	freedom := device.App{
		Name:         "Freedom",
		RequiresRoot: true,
		Permissions: []string{
			"ACCESS_GOOGLE_ACCOUNTS", "READ_PHONE_STATE", "WRITE_SETTINGS",
		},
		InstallRoots: []*x509.Certificate{u.Root("CRAZY HOUSE").Issued.Cert},
	}

	fmt.Println("install on a stock device:")
	if err := dev.Install(freedom); errors.Is(err, device.ErrNeedsRoot) {
		fmt.Printf("  blocked: %v\n", err)
	}

	fmt.Println("root the device and retry:")
	dev.Root()
	if err := dev.Install(freedom); err != nil {
		log.Fatal(err)
	}
	crazy := u.Root("CRAZY HOUSE").Issued.Cert
	fmt.Printf("  system store now trusts %q: %v (no user interaction, no warning)\n",
		crazy.Subject.CommonName, dev.SystemStore().Contains(crazy))

	// Part 2: fleet-scale detection (Table 5). Roots found on rooted
	// handsets and never on non-rooted ones are the §6 signal.
	fmt.Println("\ngenerating fleet and hunting rooted-exclusive roots...")
	pop, err := population.Generate(population.Config{Seed: 1, SessionScale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	rows := analysis.Table5(pop)
	fmt.Print(report.Table5(rows))

	h := analysis.ComputeHeadlines(pop)
	fmt.Printf("\n%.0f%% of sessions ran on rooted handsets; %.1f%% of those carried rooted-only roots\n",
		h.RootedFraction*100, h.RootedExclusiveOfRoots*100)
}
