// Interception: reproduce §7 live on loopback. Origin TLS servers serve the
// Table 6 domains; the marketing-research proxy intercepts everything except
// its whitelist, re-signing certificates on the fly under its own root; a
// Netalyzr session runs through the proxy; the detector splits the probes
// into Table 6's two columns.
//
//	go run ./examples/interception
package main

import (
	"context"
	"fmt"
	"log"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/report"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	u := cauniverse.Default()

	// The "internet": one loopback TLS server answering for every Table 6
	// domain by SNI, with legitimate chains under popular roots.
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 1, Universe: u, NumLeaves: 10})
	if err != nil {
		log.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("origin TLS server on %s (%d sites)\n", srv.Addr(), len(sites.All()))

	// The marketing proxy: terminates TLS with forged certificates, except
	// for pinned/whitelisted services which it tunnels untouched.
	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: srv}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interception proxy signing as %q\n",
		u.InterceptionRoot().Issued.Cert.Subject.CommonName)

	// The §7 handset: a stock Nexus 7 on 4.4 whose traffic is tunneled
	// through the proxy. No root-store modification is needed.
	dev := device.New(device.Profile{
		Model: "Nexus 7", Manufacturer: "ASUS", Operator: "WiFi", Country: "US", Version: "4.4",
	}, u.AOSP("4.4"), nil)
	client, err := netalyzr.New(dev, proxy, netalyzr.WithValidationTime(certgen.Epoch))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	det := &mitm.Detector{
		Reference: rootstore.Union("official stores", u.AOSP("4.4"), u.Mozilla(), u.IOS7()),
		At:        certgen.Epoch,
	}
	intercepted, clean := det.InspectReport(rep)
	fmt.Println("\nTable 6 reproduction:")
	fmt.Print(report.Table6(intercepted, clean))

	st := proxy.Stats()
	fmt.Printf("\nproxy stats: %d intercepted, %d tunneled, %d leaves forged\n",
		st.Intercepted, st.Tunneled, st.LeavesForged)
	fmt.Printf("device-side signal: %d of %d probes failed store validation\n",
		len(rep.UntrustedProbes()), len(rep.Probes))
}
