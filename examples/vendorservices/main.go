// Vendorservices: why the "not recorded by the Notary" roots exist (§5.1).
// Motorola firmware carries FOTA and SUPL roots that never appear in web
// traffic; this example runs both services live on loopback — a signed
// firmware-update check and an A-GPS assistance exchange — and shows that a
// stock device (without the special-purpose roots) refuses both channels.
//
//	go run ./examples/vendorservices
package main

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"log"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/fota"
	"tangledmass/internal/supl"
)

func main() {
	log.SetFlags(0)
	u := cauniverse.Default()
	gen := u.Generator()
	fotaRoot := u.Root("Motorola FOTA Root CA")
	suplRoot := u.Root("Motorola SUPL Server Root CA")

	// Vendor infrastructure: the FOTA update server and the SUPL server.
	fotaSvc, err := gen.Leaf(fotaRoot.Issued, "fota.vendor.example", certgen.WithKeyName("ex-fota"))
	if err != nil {
		log.Fatal(err)
	}
	payload := sha256.Sum256([]byte("firmware image 4.4.2"))
	updateSrv, err := fota.NewServer(&fota.Signer{Cert: fotaSvc}, fota.Manifest{
		Model: "Droid Razr", Version: "4.4.2", PayloadSHA256: hex.EncodeToString(payload[:]),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer updateSrv.Close()

	suplSvc, err := gen.Leaf(suplRoot.Issued, "supl.vendor.example", certgen.WithKeyName("ex-supl"))
	if err != nil {
		log.Fatal(err)
	}
	suplSrv, err := supl.NewServer(suplSvc)
	if err != nil {
		log.Fatal(err)
	}
	defer suplSrv.Close()

	// A Motorola handset: AOSP base + the two vendor roots (§5.1).
	moto := device.New(device.Profile{Model: "Droid Razr", Manufacturer: "MOTOROLA", Version: "4.4"},
		u.AOSP("4.4"), []*x509.Certificate{fotaRoot.Issued.Cert, suplRoot.Issued.Cert})
	fmt.Printf("Motorola image: %d roots (AOSP 150 + FOTA + SUPL)\n", moto.SystemStore().Len())

	updater := &fota.Updater{Store: moto.EffectiveStore(), FOTARoot: fotaRoot.Issued.Cert, At: certgen.Epoch}
	manifest, err := updater.Fetch(updateSrv.Addr(), "fota.vendor.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FOTA: verified signed manifest for %s %s (payload %s…)\n",
		manifest.Model, manifest.Version, manifest.PayloadSHA256[:12])

	locator := &supl.Client{Store: moto.EffectiveStore(), SUPLRoot: suplRoot.Issued.Cert, At: certgen.Epoch}
	assist, err := locator.Fetch(suplSrv.Addr(), "supl.vendor.example", supl.LocationRequest{
		Cells:   []supl.CellID{{MCC: 310, MNC: 4, LAC: 120, Cell: 20033}},
		WiFiAPs: []string{"aa:bb:cc:dd:ee:01"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUPL: assistance received (≈%.0f,%.0f; %d ephemerides) — the server now knows the radio environment\n",
		assist.ApproxLat, assist.ApproxLon, len(assist.EphemerisIDs))

	// A stock Nexus lacks the vendor roots: both channels refused.
	stock := device.New(device.Profile{Model: "Nexus 5", Manufacturer: "LG", Version: "4.4"},
		u.AOSP("4.4"), nil)
	stockUpdater := &fota.Updater{Store: stock.EffectiveStore(), FOTARoot: fotaRoot.Issued.Cert, At: certgen.Epoch}
	if _, err := stockUpdater.Fetch(updateSrv.Addr(), "fota.vendor.example"); errors.Is(err, fota.ErrChannelUntrusted) {
		fmt.Println("stock device: FOTA channel refused (no FOTA root in store)")
	}
	stockLocator := &supl.Client{Store: stock.EffectiveStore(), SUPLRoot: suplRoot.Issued.Cert, At: certgen.Epoch}
	if _, err := stockLocator.Fetch(suplSrv.Addr(), "supl.vendor.example", supl.LocationRequest{}); errors.Is(err, supl.ErrChannelUntrusted) {
		fmt.Println("stock device: SUPL channel refused — no location context transmitted")
	}
	fmt.Printf("SUPL server observed %d request(s) total\n", len(suplSrv.ObservedRequests()))
}
