// Fleetaudit: generate a Netalyzr-style device fleet, then run the paper's
// §5 analyses on it — the extended-store scatter (Figure 1), the headline
// numbers, and the vendor/operator certificate attribution (Figure 2).
//
//	go run ./examples/fleetaudit [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"tangledmass/internal/analysis"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/population"
	"tangledmass/internal/report"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.25, "session-quota scale (1.0 = the paper's 15,970 sessions)")
	flag.Parse()

	pop, err := population.Generate(population.Config{Seed: 1, SessionScale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Headline numbers (§5/§6):")
	fmt.Print(report.Headlines(analysis.ComputeHeadlines(pop)))

	devices, manufacturers := analysis.Table2(pop, 5)
	fmt.Println("\nTop devices and manufacturers (Table 2):")
	fmt.Print(report.Table2(devices, manufacturers))

	// Figure 1: where sessions sit in the (AOSP certs, extra certs) plane.
	pts := analysis.Figure1(pop)
	fmt.Printf("\nFigure 1 scatter: %d distinct coordinates; a sample:\n", len(pts))
	shown := 0
	for _, p := range pts {
		if p.ExtraCerts > 40 && shown < 8 {
			fmt.Printf("  %-10s %s: %d AOSP + %d extra certs (%d sessions)\n",
				p.Manufacturer, p.Version, p.AOSPCerts, p.ExtraCerts, p.Sessions)
			shown++
		}
	}

	// Figure 2 needs the Notary for the presence classes; a small simulated
	// internet suffices for classification.
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 1, Universe: pop.Universe, NumLeaves: 2000})
	if err != nil {
		log.Fatal(err)
	}
	ndb := notary.New(certgen.Epoch)
	tlsnet.Feed(world, ndb)

	cells := analysis.Figure2(pop, ndb, 10)
	fmt.Printf("\nFigure 2 attribution matrix: %d cells; class shares over displayed certs:\n", len(cells))
	for class, share := range analysis.ClassShares(cells) {
		fmt.Printf("  %-30s %.1f%%\n", class, share*100)
	}
}
