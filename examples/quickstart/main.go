// Quickstart: build the reference root-store universe, diff AOSP 4.4
// against Mozilla under the paper's certificate equivalence, and classify a
// few well-known vendor additions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tangledmass/internal/analysis"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/rootstore"
)

func main() {
	log.SetFlags(0)

	// The universe is a pure function of its seed: every root store the
	// paper studies, with real keys and real self-signatures.
	u, err := cauniverse.New(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Root store sizes (Table 1):")
	for _, row := range analysis.Table1(u) {
		fmt.Printf("  %-10s %d certificates\n", row.Name, row.Certs)
	}

	// Diff AOSP 4.4 against Mozilla. Matching is by the paper's identity —
	// subject + public key — so roots that were re-issued with a new
	// expiration date still count as shared.
	d := rootstore.Diff(u.AOSP("4.4"), u.Mozilla())
	fmt.Printf("\nAOSP 4.4 vs Mozilla: %d shared (equivalent), %d byte-identical, %d AOSP-only, %d Mozilla-only\n",
		len(d.Both), rootstore.ByteIntersectCount(u.AOSP("4.4"), u.Mozilla()),
		len(d.OnlyA), len(d.OnlyB))

	// The expired Firmaprofesional analogue still ships in every AOSP
	// version (§2).
	exp := u.ExpiredRoot()
	fmt.Printf("\nExpired root still shipped: %s (not after %s)\n",
		exp.Name, exp.Issued.Cert.NotAfter.Format("2006-01-02"))

	// Classify some famous vendor additions from Figure 2.
	fmt.Println("\nVendor additions and where else they are trusted:")
	for _, name := range []string{
		"DoD CLASS 3 Root CA",
		"Motorola FOTA Root CA",
		"AddTrust Class 1 CA Root",
		"CFCA Root CA",
	} {
		r := u.Root(name)
		fmt.Printf("  %-28s hash=%s class=%s\n",
			r.Name, certid.SubjectHashString(r.Issued.Cert), r.Class)
	}
}
