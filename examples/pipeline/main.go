// Pipeline: the whole reproduction in one run, over real sockets. A device
// fleet is generated; every session executes a real Netalyzr measurement
// against loopback TLS origins (the §7 handset through the interception
// proxy); reports stream to the collection server; and the §5/§6 analyses
// are read back off the collector's aggregate — the full
// population → device → netalyzr → mitm → collect path.
//
//	go run ./examples/pipeline [-scale 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"tangledmass/internal/campaign"
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/mitm"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.05, "session-quota scale (1.0 = the paper's 15,970 sessions)")
	flag.Parse()

	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: 1, Universe: u, SessionScale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d handsets, %d sessions\n", len(pop.Handsets), pop.TotalSessions())

	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 1, Universe: u, NumLeaves: 10})
	if err != nil {
		log.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		log.Fatal(err)
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()

	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: origin}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		log.Fatal(err)
	}

	collector, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()
	fmt.Printf("origin on %s; collector on %s\n", origin.Addr(), collector.Addr())

	stats, err := campaign.Run(context.Background(), pop, origin, collector.Addr(),
		campaign.WithProxy(proxy),
		campaign.WithTargets([]tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},
			{Host: "www.google.com", Port: 443},
			{Host: "www.bankofamerica.com", Port: 443},
		}),
		campaign.WithConcurrency(8),
		campaign.WithValidationTime(certgen.Epoch),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d sessions in %v (%d failed, %d untrusted probes)\n",
		stats.Sessions, stats.Elapsed.Round(1e6), stats.Failed, stats.UntrustedProbes)

	sum := collector.Summary()
	fmt.Printf("\ncollector aggregate:\n")
	fmt.Printf("  sessions: %d (%.1f%% rooted)\n", sum.Sessions,
		100*float64(sum.RootedSessions)/float64(sum.Sessions))
	fmt.Printf("  store sizes: %d–%d (mean %.1f)\n",
		sum.StoreSizeMin, sum.StoreSizeMax, sum.MeanStoreSize())
	fmt.Printf("  untrusted probes observed: %d (the §7 handset's intercepted targets)\n",
		sum.UntrustedProbes)

	type mc struct {
		name string
		n    int64
	}
	var mans []mc
	for m, c := range sum.ByManufacturer {
		mans = append(mans, mc{m, c})
	}
	sort.Slice(mans, func(i, j int) bool { return mans[i].n > mans[j].n })
	fmt.Println("  top manufacturers (Table 2 shape):")
	for i, m := range mans {
		if i == 5 {
			break
		}
		fmt.Printf("    %-10s %d\n", m.name, m.n)
	}
	st := proxy.Stats()
	fmt.Printf("\nproxy: %d intercepted, %d tunneled\n", st.Intercepted, st.Tunneled)
}
