package tangledmass

// Benchmarks for the extension subsystems (§8 recommendations, trust
// levels, the networked Notary, active scanning, FOTA, pinning, dataset
// I/O).

import (
	"context"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/dataset"
	"tangledmass/internal/fota"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/pinning"
	"tangledmass/internal/recommend"
	"tangledmass/internal/tap"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trustlevel"
	"tangledmass/internal/x509scan"
)

// BenchmarkRecommendMinimize measures one §8 pruning proposal (threshold 1)
// over AOSP 4.4.
func BenchmarkRecommendMinimize(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := recommend.Minimize(f.notary, f.universe.AOSP("4.4"), 1)
		if len(m.Remove) == 0 {
			b.Fatal("nothing removable")
		}
	}
}

// BenchmarkRecommendSweep measures a full threshold sweep with breakage
// evaluation.
func BenchmarkRecommendSweep(b *testing.B) {
	f := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := recommend.Sweep(f.notary, f.universe.AOSP("4.4"), []int{1, 5, 25})
		if pts[0].Broken != 0 {
			b.Fatal("threshold-1 breakage should be zero")
		}
	}
}

// BenchmarkTrustSurface measures building the Mozilla-style policy and its
// surface report over the aggregated store.
func BenchmarkTrustSurface(b *testing.B) {
	f := benchFixtures(b)
	store := f.universe.AggregatedAndroid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := trustlevel.Surface("mozilla-style", trustlevel.MozillaStylePolicy(f.universe, store))
		if rep.ServerAuthRoots >= store.Len() {
			b.Fatal("policy should restrict something")
		}
	}
}

// BenchmarkNotarynetObserve measures client→server observation round-trips
// over TCP.
func BenchmarkNotarynetObserve(b *testing.B) {
	f := benchFixtures(b)
	srv, err := notarynet.NewServer(f.notary, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := notarynet.NewClient(context.Background(), srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	leaves := f.world.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := leaves[i%len(leaves)]
		if err := c.Observe(context.Background(), l.Chain, l.Port); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScannerSweep measures an active scan of all probe targets over
// loopback TLS.
func BenchmarkScannerSweep(b *testing.B) {
	f := benchFixtures(b)
	sites, err := tlsnet.NewSites(f.world)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	s := &x509scan.Scanner{Dialer: tlsnet.DirectDialer{Server: srv}, Concurrency: 8}
	targets := tlsnet.ProbeTargets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := s.Scan(context.Background(), targets)
		if err != nil {
			b.Fatal(err)
		}
		if sum := x509scan.Summarize(results); sum.Failed != 0 {
			b.Fatalf("%d scan failures", sum.Failed)
		}
	}
}

// BenchmarkFOTAFetch measures a full firmware-update check: TLS handshake,
// channel verification, manifest verification.
func BenchmarkFOTAFetch(b *testing.B) {
	f := benchFixtures(b)
	root := f.universe.Root("Motorola FOTA Root CA")
	svc, err := f.universe.Generator().Leaf(root.Issued, "fota.vendor.example",
		certgen.WithKeyName("bench-fota-service"))
	if err != nil {
		b.Fatal(err)
	}
	payload := sha256.Sum256([]byte("firmware"))
	srv, err := fota.NewServer(&fota.Signer{Cert: svc}, fota.Manifest{
		Model: "Droid", Version: "4.4", PayloadSHA256: hex.EncodeToString(payload[:]),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	store := f.universe.AOSP("4.4").Clone("moto")
	store.Add(root.Issued.Cert)
	up := &fota.Updater{Store: store, FOTARoot: root.Issued.Cert, At: certgen.Epoch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := up.Fetch(srv.Addr(), "fota.vendor.example"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinningCheck measures one pin check against a 3-cert chain.
func BenchmarkPinningCheck(b *testing.B) {
	g := certgen.NewGenerator(200)
	root, _ := g.SelfSignedCA("Bench Pin Root")
	inter, _ := g.Intermediate(root, "Bench Pin Inter")
	leaf, _ := g.Leaf(inter, "bench.example.com")
	s := pinning.NewStore()
	s.Add("bench.example.com", inter.Cert)
	chain := []*x509.Certificate{leaf.Cert, inter.Cert, root.Cert}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Check("bench.example.com", chain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetWrite and BenchmarkDatasetRead measure the interchange
// layer at 10% fleet scale.
func BenchmarkDatasetWrite(b *testing.B) {
	f := benchFixtures(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dataset.NewWriter(filepath.Join(dir, "ds"), dataset.WithFormat(dataset.JSONL)).Write(context.Background(), f.pop); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetRead(b *testing.B) {
	f := benchFixtures(b)
	dir := filepath.Join(b.TempDir(), "ds")
	if err := dataset.NewWriter(dir, dataset.WithFormat(dataset.JSONL)).Write(context.Background(), f.pop); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dataset.NewReader(dir, dataset.WithUniverse(f.universe)).Read(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if p.TotalSessions() != f.pop.TotalSessions() {
			b.Fatal("round-trip session mismatch")
		}
	}
	b.StopTimer()
	os.RemoveAll(dir)
}

// BenchmarkDatasetReadColumnar measures loading the same fleet from the v2
// columnar format: one bulk intern of the deduplicated DER table and flat
// column decodes instead of the JSONL path's per-handset JSON parsing and
// fingerprint resolution.
func BenchmarkDatasetReadColumnar(b *testing.B) {
	f := benchFixtures(b)
	ctx := context.Background()
	dir := filepath.Join(b.TempDir(), "ds")
	if err := dataset.NewWriter(dir, dataset.WithFormat(dataset.Columnar)).Write(ctx, f.pop); err != nil {
		b.Fatal(err)
	}
	r := dataset.NewReader(dir, dataset.WithUniverse(f.universe))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Read(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if p.TotalSessions() != f.pop.TotalSessions() {
			b.Fatal("round-trip session mismatch")
		}
	}
	b.StopTimer()
	os.RemoveAll(dir)
}

// BenchmarkDatasetConvert measures a full v1→v2 re-encode: JSONL load plus
// columnar write, the `tangled dataset convert` hot path.
func BenchmarkDatasetConvert(b *testing.B) {
	f := benchFixtures(b)
	ctx := context.Background()
	src := filepath.Join(b.TempDir(), "src")
	dst := filepath.Join(b.TempDir(), "dst")
	if err := dataset.NewWriter(src).Write(ctx, f.pop); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dataset.NewReader(src, dataset.WithUniverse(f.universe)).Read(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := dataset.NewWriter(dst, dataset.WithFormat(dataset.Columnar)).Write(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	os.RemoveAll(src)
	os.RemoveAll(dst)
}

// BenchmarkTapExtraction measures passive chain extraction: a full TLS 1.2
// handshake through the tap relay with parser attached.
func BenchmarkTapExtraction(b *testing.B) {
	f := benchFixtures(b)
	sites, err := tlsnet.NewSites(f.world)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ndb := notary.New(certgen.Epoch)
	tp, err := tap.New(srv.Addr(), ndb, 443)
	if err != nil {
		b.Fatal(err)
	}
	defer tp.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := tls.Dial("tcp", tp.Addr(), &tls.Config{
			ServerName:         "www.google.com",
			InsecureSkipVerify: true,
			MaxVersion:         tls.VersionTLS12,
		})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4)
		io.ReadFull(conn, buf)
		conn.Close()
	}
	b.StopTimer()
	if tp.Extracted() == 0 {
		b.Fatal("tap extracted nothing")
	}
}

// BenchmarkTapParser measures the record/handshake parser alone on a
// pre-captured certificate flight.
func BenchmarkTapParser(b *testing.B) {
	f := benchFixtures(b)
	leaf := f.world.Leaves()[0]
	var flight []byte
	{
		var list []byte
		for _, c := range leaf.Chain {
			der := c.Raw
			list = append(list, byte(len(der)>>16), byte(len(der)>>8), byte(len(der)))
			list = append(list, der...)
		}
		body := append([]byte{byte(len(list) >> 16), byte(len(list) >> 8), byte(len(list))}, list...)
		msg := append([]byte{11, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}, body...)
		flight = append([]byte{22, 3, 3, byte(len(msg) >> 8), byte(len(msg))}, msg...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &tap.StreamParser{}
		if err := p.Feed(flight); err != nil {
			b.Fatal(err)
		}
		if !p.Done() {
			b.Fatal("parser did not finish")
		}
	}
}
